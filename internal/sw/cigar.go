package sw

import (
	"fmt"
	"strconv"
	"strings"
)

// CIGAR returns the alignment's CIGAR string in SAM conventions with
// extended operators: '=' for a match, 'X' for a mismatch, 'I' for an
// insertion in the query (gap in the target row) and 'D' for a deletion
// (gap in the query row). The empty alignment yields "".
func (a *Alignment) CIGAR() string {
	var b strings.Builder
	var runOp byte
	runLen := 0
	flush := func() {
		if runLen > 0 {
			b.WriteString(strconv.Itoa(runLen))
			b.WriteByte(runOp)
		}
	}
	for i := range a.QueryRow {
		var op byte
		switch {
		case a.QueryRow[i] == '-':
			op = 'D'
		case a.TargetRow[i] == '-':
			op = 'I'
		case a.QueryRow[i] == a.TargetRow[i]:
			op = '='
		default:
			op = 'X'
		}
		if op == runOp {
			runLen++
			continue
		}
		flush()
		runOp, runLen = op, 1
	}
	flush()
	return b.String()
}

// ParseCIGAR expands a CIGAR string produced by CIGAR back into per-column
// operators, validating syntax.
func ParseCIGAR(s string) ([]byte, error) {
	var out []byte
	n := 0
	sawDigit := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			n = n*10 + int(c-'0')
			sawDigit = true
			if n > 1<<30 {
				return nil, fmt.Errorf("sw: CIGAR run too long at byte %d", i)
			}
		case c == '=' || c == 'X' || c == 'I' || c == 'D' || c == 'M':
			if !sawDigit || n == 0 {
				return nil, fmt.Errorf("sw: CIGAR operator %q without a length at byte %d", c, i)
			}
			for k := 0; k < n; k++ {
				out = append(out, c)
			}
			n, sawDigit = 0, false
		default:
			return nil, fmt.Errorf("sw: invalid CIGAR byte %q at %d", c, i)
		}
	}
	if sawDigit {
		return nil, fmt.Errorf("sw: trailing CIGAR length without operator")
	}
	return out, nil
}
