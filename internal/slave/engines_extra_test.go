package slave

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/score"
	"repro/internal/seq"
)

func TestMulticoreEngineMatchesFarrar(t *testing.T) {
	db := tinyDB(t)
	mc, err := NewMulticoreEngine("host0", score.DefaultProtein(), db, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Cores() != 3 {
		t.Errorf("Cores = %d", mc.Cores())
	}
	sse, _ := NewFarrarEngine("ref", score.DefaultProtein(), db, 0)
	q := dataset.Queries(db, 1, 70, 70, 21)[0]
	got, err := mc.Search(q, nil, make(chan struct{}))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := sse.Search(q, nil, make(chan struct{}))
	for i := range got {
		if got[i].Score != want[i].Score || got[i].SeqID != want[i].SeqID || got[i].Index != want[i].Index {
			t.Fatalf("hit %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	if mc.Kind() != sse.Kind() || mc.DatabaseResidues() != sse.DatabaseResidues() {
		t.Error("metadata mismatch")
	}
}

func TestMulticoreEngineDefaultsCores(t *testing.T) {
	db := tinyDB(t)
	mc, err := NewMulticoreEngine("h", score.DefaultProtein(), db, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Cores() < 1 {
		t.Errorf("Cores = %d", mc.Cores())
	}
}

func TestMulticoreEngineCancel(t *testing.T) {
	db := tinyDB(t)
	mc, _ := NewMulticoreEngine("h", score.DefaultProtein(), db, 2, 0)
	cancel := make(chan struct{})
	close(cancel)
	q := dataset.Queries(db, 1, 40, 40, 22)[0]
	if _, err := mc.Search(q, nil, cancel); err != ErrCanceled {
		t.Errorf("err = %v", err)
	}
}

func TestSwipeEngineMatchesFarrar(t *testing.T) {
	db := tinyDB(t)
	sw1, err := NewSwipeEngine("swipe0", score.DefaultProtein(), db, 0)
	if err != nil {
		t.Fatal(err)
	}
	sse, _ := NewFarrarEngine("ref", score.DefaultProtein(), db, 0)
	for _, q := range dataset.Queries(db, 3, 30, 90, 23) {
		got, err := sw1.Search(q, nil, make(chan struct{}))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := sse.Search(q, nil, make(chan struct{}))
		for i := range got {
			if got[i].Score != want[i].Score || got[i].SeqID != want[i].SeqID {
				t.Fatalf("query %s hit %d: %+v vs %+v", q.ID, i, got[i], want[i])
			}
		}
	}
}

func TestExtraEngineValidation(t *testing.T) {
	if _, err := NewMulticoreEngine("h", score.Scheme{}, tinyDB(t), 2, 0); err == nil {
		t.Error("bad scheme accepted")
	}
	if _, err := NewMulticoreEngine("h", score.DefaultProtein(), nil, 2, 0); err == nil {
		t.Error("empty db accepted")
	}
	if _, err := NewSwipeEngine("s", score.Scheme{}, tinyDB(t), 0); err == nil {
		t.Error("bad scheme accepted")
	}
	if _, err := NewSwipeEngine("s", score.DefaultProtein(), nil, 0); err == nil {
		t.Error("empty db accepted")
	}
}

func TestSwipeEngineBadQuery(t *testing.T) {
	db := tinyDB(t)
	e, _ := NewSwipeEngine("s", score.DefaultProtein(), db, 0)
	bad := seq.New("q", "", []byte("AC?D"))
	if _, err := e.Search(bad, nil, make(chan struct{})); err == nil {
		t.Error("invalid query accepted")
	}
}
