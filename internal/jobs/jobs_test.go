package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

func req(fasta string) Request {
	return Request{QueriesFasta: fasta, Queries: 1, Residues: int64(len(fasta))}
}

func waitState(t *testing.T, m *Manager, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == want {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, j.State, want)
	return Job{}
}

func counter(t *testing.T, c *metrics.Counter, want float64, name string) {
	t.Helper()
	if got := c.Value(); got != want {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// TestSingleflightAndCache is the core coalescing contract: N identical
// submissions while one is in flight execute exactly once, and a later
// identical submission is served from the result cache without running.
func TestSingleflightAndCache(t *testing.T) {
	mm := NewMetrics(metrics.NewRegistry())
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	var execs atomic.Int32
	m, err := New(Config{
		Executors: 1,
		Metrics:   mm,
		Run: func(ctx context.Context, r Request) ([]byte, error) {
			execs.Add(1)
			started <- struct{}{}
			select {
			case <-release:
				return []byte(`{"ok":true}`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	first, err := m.Submit(req(">q\nMKVL"), true)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the job is running; duplicates must now coalesce

	const dups = 5
	for i := 0; i < dups; i++ {
		j, err := m.Submit(req(">q\nMKVL"), false)
		if err != nil {
			t.Fatal(err)
		}
		if j.ID != first.ID {
			t.Fatalf("duplicate got job %s, want coalesced into %s", j.ID, first.ID)
		}
	}
	close(release)
	j, err := m.Wait(context.Background(), first.ID)
	if err != nil || j.State != StateDone {
		t.Fatalf("wait: %v %s", err, j.State)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions, want exactly 1", got)
	}
	counter(t, mm.Submitted, 1, "jobs_submitted_total")
	counter(t, mm.Coalesced, float64(dups), "jobs_coalesced_total")
	counter(t, mm.CacheMisses, 1, "jobs_cache_misses_total")
	counter(t, mm.CacheHits, 0, "jobs_cache_hits_total")
	counter(t, mm.Completed.With("done"), 1, "jobs_completed_total{done}")

	// Same request after completion: answered from the cache, no execution.
	hit, err := m.Submit(req(">q\nMKVL"), false)
	if err != nil {
		t.Fatal(err)
	}
	if hit.State != StateDone || !hit.CacheHit || hit.ID == first.ID {
		t.Fatalf("cache-hit job = %+v", hit)
	}
	body, _, err := m.Result(hit.ID)
	if err != nil || string(body) != `{"ok":true}` {
		t.Fatalf("cached result = %q %v", body, err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions after cache hit, want 1", got)
	}
	counter(t, mm.CacheHits, 1, "jobs_cache_hits_total")

	// A different request must not hit the cache.
	other, err := m.Submit(req(">q\nAAAA"), true)
	if err != nil {
		t.Fatal(err)
	}
	if other.CacheHit {
		t.Fatal("distinct request reported a cache hit")
	}
	waitState(t, m, other.ID, StateDone)
}

func TestAdmissionCaps(t *testing.T) {
	mm := NewMetrics(metrics.NewRegistry())
	m, err := New(Config{
		Executors:   -1,
		MaxQueries:  2,
		MaxResidues: 10,
		Metrics:     mm,
		Run:         func(context.Context, Request) ([]byte, error) { return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	var rej *RejectError
	_, err = m.Submit(Request{QueriesFasta: "x", Queries: 3, Residues: 5}, false)
	if !errors.As(err, &rej) || rej.Reason != "too_many_queries" {
		t.Fatalf("queries cap: %v", err)
	}
	_, err = m.Submit(Request{QueriesFasta: "x", Queries: 1, Residues: 11}, false)
	if !errors.As(err, &rej) || rej.Reason != "too_many_residues" {
		t.Fatalf("residues cap: %v", err)
	}
	counter(t, mm.Rejected.With("too_many_queries"), 1, "rejected{too_many_queries}")
	counter(t, mm.Rejected.With("too_many_residues"), 1, "rejected{too_many_residues}")
}

func TestQueueFullReject(t *testing.T) {
	mm := NewMetrics(metrics.NewRegistry())
	m, err := New(Config{
		Executors:  -1, // nothing drains the queue
		MaxQueue:   1,
		RetryAfter: 7 * time.Second,
		Metrics:    mm,
		Run:        func(context.Context, Request) ([]byte, error) { return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	if _, err := m.Submit(req("a"), true); err != nil {
		t.Fatal(err)
	}
	_, err = m.Submit(req("b"), true)
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != "queue_full" {
		t.Fatalf("overload: %v", err)
	}
	if rej.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %s", rej.RetryAfter)
	}
	counter(t, mm.Rejected.With("queue_full"), 1, "rejected{queue_full}")
	if d := m.QueueDepth(); d != 1 {
		t.Fatalf("queue depth = %d", d)
	}
}

func TestCancelQueued(t *testing.T) {
	m, err := New(Config{
		Executors: -1,
		Run:       func(context.Context, Request) ([]byte, error) { return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	j, err := m.Submit(req("a"), true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Cancel(j.ID)
	if err != nil || got.State != StateCanceled {
		t.Fatalf("cancel queued: %v %s", err, got.State)
	}
	if d := m.QueueDepth(); d != 0 {
		t.Fatalf("queue depth = %d after cancel", d)
	}
	// Wait returns immediately: the done channel closed on cancellation.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if got, err = m.Wait(ctx, j.ID); err != nil || got.State != StateCanceled {
		t.Fatalf("wait on cancelled: %v %s", err, got.State)
	}
	// Cancel is idempotent on terminal jobs.
	if got, err = m.Cancel(j.ID); err != nil || got.State != StateCanceled {
		t.Fatalf("re-cancel: %v %s", err, got.State)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown: %v", err)
	}
}

func TestCancelRunningAbortsWork(t *testing.T) {
	mm := NewMetrics(metrics.NewRegistry())
	m, err := New(Config{
		Executors: 1,
		Metrics:   mm,
		Run: func(ctx context.Context, r Request) ([]byte, error) {
			<-ctx.Done() // real work that only stops when cancelled
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	j, err := m.Submit(req("a"), true)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateRunning)
	if _, err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, j.ID, StateCanceled)
	if got.Error == "" {
		t.Error("cancelled job has no error")
	}
	counter(t, mm.Completed.With("canceled"), 1, "completed{canceled}")
}

// TestWaiterDisconnectCancels: when the last synchronous waiter gives up,
// the job is cancelled — but an async submission pins it alive.
func TestWaiterDisconnectCancels(t *testing.T) {
	m, err := New(Config{
		Executors: 1,
		Run: func(ctx context.Context, r Request) ([]byte, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The async job below blocks until its context is cancelled, so Close
	// needs a deadline to abort (and requeue) it.
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = m.Close(ctx)
	}()

	sync1, err := m.Submit(req("sync"), false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() {
		_, err := m.Wait(ctx, sync1.ID)
		waitErr <- err
	}()
	waitState(t, m, sync1.ID, StateRunning)
	cancel()
	if err := <-waitErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("wait: %v", err)
	}
	waitState(t, m, sync1.ID, StateCanceled)

	// Async jobs survive their waiters: only DELETE cancels them.
	async1, err := m.Submit(req("async"), true)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if _, err := m.Wait(ctx2, async1.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if j, _ := m.Get(async1.ID); j.State != StateRunning {
		t.Fatalf("async job %s after waiter left, want running", j.State)
	}
}

// TestRestartResumesQueued: queued jobs written to the durable store are
// recovered and executed by the next Manager over the same dir.
func TestRestartResumesQueued(t *testing.T) {
	dir := t.TempDir()
	m1, err := New(Config{
		Executors: -1, // queue only; nothing runs before the "crash"
		Dir:       dir,
		Run:       func(context.Context, Request) ([]byte, error) { return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m1.Submit(req("first"), true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m1.Submit(Request{QueriesFasta: "second", Queries: 1, Residues: 6, Priority: 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	var order []string
	var mu sync.Mutex
	m2, err := New(Config{
		Executors: 1,
		Dir:       dir,
		Run: func(ctx context.Context, r Request) ([]byte, error) {
			mu.Lock()
			order = append(order, r.QueriesFasta)
			mu.Unlock()
			return []byte(`{"r":"` + r.QueriesFasta + `"}`), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	waitState(t, m2, a.ID, StateDone)
	waitState(t, m2, b.ID, StateDone)
	body, _, err := m2.Result(b.ID)
	if err != nil || string(body) != `{"r":"second"}` {
		t.Fatalf("recovered result = %q %v", body, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "second" {
		t.Fatalf("execution order after recovery = %v (priority lost?)", order)
	}
}

// TestDrainRequeuesRunning: a job aborted by the drain deadline returns to
// the queue and the next boot re-executes it.
func TestDrainRequeuesRunning(t *testing.T) {
	dir := t.TempDir()
	m1, err := New(Config{
		Executors: 1,
		Dir:       dir,
		Run: func(ctx context.Context, r Request) ([]byte, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m1.Submit(req("slow"), true)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, j.ID, StateRunning)
	expired, cancel := context.WithCancel(context.Background())
	cancel() // drain deadline already past: abort immediately
	if err := m1.Close(expired); err != nil {
		t.Fatal(err)
	}

	m2, err := New(Config{
		Executors: 1,
		Dir:       dir,
		Run:       func(context.Context, Request) ([]byte, error) { return []byte(`{}`), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	got := waitState(t, m2, j.ID, StateDone)
	if got.CacheHit {
		t.Error("re-executed job claims a cache hit")
	}
}

// TestTerminalHistorySurvivesRestart: finished jobs reload as history with
// their results readable.
func TestTerminalHistorySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	m1, err := New(Config{
		Executors: 1,
		Dir:       dir,
		Run:       func(context.Context, Request) ([]byte, error) { return []byte(`{"n":1}`), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m1.Submit(req("x"), true)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, j.ID, StateDone)
	if err := m1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	m2, err := New(Config{
		Executors: 1,
		Dir:       dir,
		Run:       func(context.Context, Request) ([]byte, error) { return nil, fmt.Errorf("must not run") },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	got, err := m2.Get(j.ID)
	if err != nil || got.State != StateDone {
		t.Fatalf("history job: %v %+v", err, got)
	}
	body, _, err := m2.Result(j.ID)
	if err != nil || string(body) != `{"n":1}` {
		t.Fatalf("history result = %q %v", body, err)
	}
	// And the cache key still matches: a repeat submission is a hit.
	hit, err := m2.Submit(req("x"), false)
	if err != nil || !hit.CacheHit {
		t.Fatalf("repeat after restart: %v %+v", err, hit)
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	m, err := New(Config{Run: func(context.Context, Request) ([]byte, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatalf("second close: %v", err)
	}
	_, err = m.Submit(req("x"), false)
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != "draining" {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestFailedJobReportsError(t *testing.T) {
	mm := NewMetrics(metrics.NewRegistry())
	m, err := New(Config{
		Executors: 1,
		Metrics:   mm,
		Run:       func(context.Context, Request) ([]byte, error) { return nil, fmt.Errorf("kernel exploded") },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	j, err := m.Submit(req("x"), true)
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, j.ID, StateFailed)
	if got.Error != "kernel exploded" {
		t.Fatalf("error = %q", got.Error)
	}
	counter(t, mm.Completed.With("failed"), 1, "completed{failed}")
	// A failed job frees its singleflight slot: the same request re-runs.
	j2, err := m.Submit(req("x"), true)
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID == j.ID {
		t.Fatal("failed job still holds the singleflight slot")
	}
}

// TestHammer drives every public entry point concurrently; run under -race
// (make test includes ./internal/jobs/... in RACE_PKGS) it shakes out
// locking mistakes across queue, cache, store and waiter bookkeeping.
func TestHammer(t *testing.T) {
	mm := NewMetrics(metrics.NewRegistry())
	m, err := New(Config{
		Executors:  3,
		MaxQueue:   16,
		CacheBytes: 64, // tiny: force constant eviction traffic
		Dir:        t.TempDir(),
		Metrics:    mm,
		Run: func(ctx context.Context, r Request) ([]byte, error) {
			select {
			case <-time.After(time.Duration(len(r.QueriesFasta)) * 100 * time.Microsecond):
				return []byte(`{"f":"` + r.QueriesFasta + `"}`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60; i++ {
				fasta := fmt.Sprintf(">q\nSEQ%d", rng.Intn(6))
				j, err := m.Submit(Request{
					QueriesFasta: fasta, Queries: 1, Residues: int64(len(fasta)),
					Priority: rng.Intn(3),
				}, rng.Intn(2) == 0)
				if err != nil {
					var rej *RejectError
					if !errors.As(err, &rej) {
						t.Errorf("submit: %v", err)
						return
					}
					continue // queue_full under load is expected
				}
				switch rng.Intn(4) {
				case 0:
					ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
					_, _ = m.Wait(ctx, j.ID)
					cancel()
				case 1:
					_, _ = m.Cancel(j.ID)
				case 2:
					_, _, _ = m.Result(j.ID)
				default:
					_, _ = m.Get(j.ID)
					_ = m.List()
					_ = m.QueueDepth()
				}
			}
		}(int64(g))
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := mm.ExecutorsBusy.Value(); got != 0 {
		t.Errorf("executors busy after close = %v", got)
	}
}

func TestKeyIncludesModeAndFilter(t *testing.T) {
	m, err := New(Config{Run: func(context.Context, Request) ([]byte, error) { return nil, nil }, Executors: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	base := req(">q\nMKVL\n")
	variants := []Request{
		base,
		{QueriesFasta: base.QueriesFasta, Mode: "filtered"},
		{QueriesFasta: base.QueriesFasta, Mode: "filtered", FilterK: 3},
		{QueriesFasta: base.QueriesFasta, Mode: "filtered", FilterMargin: 64},
	}
	seen := map[string]int{}
	for i, v := range variants {
		k := m.key(v)
		if prev, dup := seen[k]; dup {
			t.Errorf("variants %d and %d share key %s", prev, i, k)
		}
		seen[k] = i
	}
}

func TestSetStageLifecycle(t *testing.T) {
	started := make(chan context.Context)
	release := make(chan struct{})
	m, err := New(Config{Run: func(ctx context.Context, r Request) ([]byte, error) {
		started <- ctx
		<-release
		return []byte("ok"), nil
	}, Executors: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	j, err := m.Submit(req(">q\nACDE\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	ctx := <-started
	if got := JobID(ctx); got != j.ID {
		t.Fatalf("JobID(ctx) = %q, want %q", got, j.ID)
	}
	// Progress from the run context lands on the job; a foreign context is
	// dropped silently.
	m.SetStage(ctx, "prefilter", 1, 4)
	m.SetStage(ctx, "prefilter", 2, 4)
	m.SetStage(context.Background(), "rescore", 9, 9)
	snap, _ := m.Get(j.ID)
	if sc := snap.Stages["prefilter"]; sc.Done != 2 || sc.Total != 4 {
		t.Fatalf("prefilter stage = %+v", sc)
	}
	if _, ok := snap.Stages["rescore"]; ok {
		t.Fatal("foreign-context stage recorded")
	}
	close(release)
	done := waitState(t, m, j.ID, StateDone)
	// Stage history survives completion; post-terminal updates are dropped.
	m.SetStage(ctx, "prefilter", 4, 4)
	snap, _ = m.Get(j.ID)
	if sc := snap.Stages["prefilter"]; sc.Done != 2 {
		t.Fatalf("post-terminal update applied: %+v", sc)
	}
	_ = done
}
