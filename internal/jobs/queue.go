package jobs

import "sort"

// queue is the Manager's bounded admission queue. Under TenantFIFO it is
// the legacy single priority FIFO: jobs pop highest Priority first and in
// submission order within a level, tenant-blind. Under TenantWFQ/TenantDRF
// it keeps one priority FIFO per tenant and pops from the backlogged tenant
// with the lowest virtual pass in the TenantBook — weighted fair queueing,
// with priority ordering within (not across) tenants, so one tenant's
// priority inflation cannot starve another. Every transition is mirrored
// into the book so quota and fairness accounting stay exact. It is not safe
// for concurrent use; the Manager serializes access under its mutex.
type queue struct {
	max   int
	book  *TenantBook
	lists map[string][]*job
	names []string // sorted keys of lists (deterministic pop scans)
	n     int
}

func newQueue(max int, book *TenantBook) *queue {
	if book == nil {
		book = NewTenantBook(TenantFIFO, nil, TenantConfig{})
	}
	return &queue{max: max, book: book, lists: map[string][]*job{}}
}

func (q *queue) len() int { return q.n }

// listKey buckets a job: one global list under FIFO, per-tenant otherwise.
func (q *queue) listKey(j *job) string {
	if q.book.Policy() == TenantFIFO {
		return ""
	}
	return j.Request.Tenant
}

// push appends j in priority position within its bucket; it reports false
// when the queue is at capacity (admission control rejects, never blocks).
func (q *queue) push(j *job) bool {
	if q.max > 0 && q.n >= q.max {
		return false
	}
	key := q.listKey(j)
	items, ok := q.lists[key]
	if !ok {
		q.names = append(q.names, key)
		sort.Strings(q.names)
	}
	// Insert after the last item with priority >= j's: stable within a
	// level. Queues are small (bounded); linear scan is fine.
	i := len(items)
	for i > 0 && items[i-1].Request.Priority < j.Request.Priority {
		i--
	}
	items = append(items, nil)
	copy(items[i+1:], items[i:])
	items[i] = j
	q.lists[key] = items
	q.n++
	q.book.Enqueue(j.Request.Tenant, j.Request.Residues)
	return true
}

// forcePush inserts j regardless of capacity — recovery re-enqueues every
// surviving job even when the configured bound shrank, and a job bumped by
// a shutdown abort must never be dropped.
func (q *queue) forcePush(j *job) {
	max := q.max
	q.max = 0
	q.push(j)
	q.max = max
}

// pop removes and returns the next job — the fair-queue head — or nil when
// empty. The dequeue is charged to the tenant's pass in the book.
func (q *queue) pop() *job {
	if q.n == 0 {
		return nil
	}
	bestKey, have := "", false
	var bestPass float64
	for _, key := range q.names {
		if len(q.lists[key]) == 0 {
			continue
		}
		// Under FIFO there is a single bucket; otherwise the bucket key is
		// the tenant and its pass decides.
		pass := q.book.Pass(q.lists[key][0].Request.Tenant)
		if !have || pass < bestPass {
			bestKey, bestPass, have = key, pass, true
		}
	}
	items := q.lists[bestKey]
	j := items[0]
	copy(items, items[1:])
	items[len(items)-1] = nil
	q.lists[bestKey] = items[:len(items)-1]
	q.n--
	q.book.Dequeue(j.Request.Tenant, j.Request.Queries, j.Request.Residues)
	return j
}

// remove drops a specific job (cancellation of a queued job); it reports
// whether the job was present.
func (q *queue) remove(j *job) bool {
	key := q.listKey(j)
	items := q.lists[key]
	for i, it := range items {
		if it == j {
			copy(items[i:], items[i+1:])
			items[len(items)-1] = nil
			q.lists[key] = items[:len(items)-1]
			q.n--
			q.book.Remove(j.Request.Tenant, j.Request.Residues)
			return true
		}
	}
	return false
}
