package sched

import (
	"testing"
	"time"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func newCoord(n int, cfg Config) (*Coordinator, []SlaveID) {
	c := NewCoordinator(mkTasks(n), cfg)
	ids := []SlaveID{
		c.Register(SlaveInfo{Name: "gpu0", Kind: KindGPU}, 0),
		c.Register(SlaveInfo{Name: "sse0", Kind: KindCPU}, 0),
	}
	return c, ids
}

func TestCoordinatorFirstAllocationOneEach(t *testing.T) {
	c, ids := newCoord(10, Config{Policy: &PSS{}})
	for _, id := range ids {
		tasks, replica := c.RequestWork(id, 0)
		if len(tasks) != 1 || replica {
			t.Fatalf("slave %d first allocation = %d tasks (replica=%v), want 1", id, len(tasks), replica)
		}
	}
	if c.Pool().Ready() != 8 || c.Pool().ExecutingCount() != 2 {
		t.Fatalf("pool counts wrong: %d %d", c.Pool().Ready(), c.Pool().ExecutingCount())
	}
}

func TestCoordinatorPSSAdaptsToSpeed(t *testing.T) {
	c, ids := newCoord(20, Config{Policy: &PSS{}})
	gpu, sse := ids[0], ids[1]
	// Feed speed observations: GPU 6000 cells/s, SSE 1000 cells/s.
	c.ProgressRate(gpu, 6000, 0, sec(1))
	c.ProgressRate(sse, 1000, 0, sec(1))
	tasks, _ := c.RequestWork(gpu, sec(1))
	if len(tasks) != 6 {
		t.Fatalf("GPU grant = %d, want 6", len(tasks))
	}
	tasks, _ = c.RequestWork(sse, sec(1))
	if len(tasks) != 1 {
		t.Fatalf("SSE grant = %d, want 1", len(tasks))
	}
}

func TestCoordinatorCompleteAndMerge(t *testing.T) {
	c, ids := newCoord(2, Config{Policy: SS{}})
	t0, _ := c.RequestWork(ids[0], 0)
	t1, _ := c.RequestWork(ids[1], 0)
	ok, cancel := c.Complete(ids[0], t0[0].ID, "r0", sec(1))
	if !ok || cancel != nil {
		t.Fatalf("Complete = %v %v", ok, cancel)
	}
	ok, _ = c.Complete(ids[1], t1[0].ID, "r1", sec(2))
	if !ok || !c.Done() {
		t.Fatal("job should be done")
	}
	res := c.Results()
	if len(res) != 2 || res[0].Task != 0 || res[1].Task != 1 {
		t.Fatalf("Results = %v", res)
	}
	if res[0].Payload != "r0" || res[0].Slave != ids[0] || res[0].At != sec(1) {
		t.Fatalf("result 0 = %+v", res[0])
	}
}

func TestWorkloadAdjustmentReplicaAndCancel(t *testing.T) {
	c, ids := newCoord(1, Config{Policy: SS{}, Adjust: true})
	gpu, sse := ids[0], ids[1]
	// SSE takes the only task; speeds become known.
	c.ProgressRate(gpu, 6000, 0, 0)
	c.ProgressRate(sse, 1000, 0, 0)
	tasks, _ := c.RequestWork(sse, 0)
	if len(tasks) != 1 {
		t.Fatal("setup failed")
	}
	// GPU asks: no ready tasks, adjustment clones the executing task
	// because the GPU would finish it far earlier (1000 cells: SSE ETA 1s,
	// GPU ETA ~0.17s).
	got, replica := c.RequestWork(gpu, sec(0.1))
	if len(got) != 1 || !replica || got[0].ID != tasks[0].ID {
		t.Fatalf("replica grant = %v (replica=%v)", got, replica)
	}
	// GPU finishes first; the SSE copy must be canceled.
	ok, cancel := c.Complete(gpu, got[0].ID, "fast", sec(0.3))
	if !ok || len(cancel) != 1 || cancel[0] != sse {
		t.Fatalf("Complete = %v cancel=%v", ok, cancel)
	}
	if !c.Done() {
		t.Fatal("job should be done after first completion")
	}
	// The SSE's late completion is discarded.
	ok, _ = c.Complete(sse, tasks[0].ID, "slow", sec(1))
	if ok {
		t.Fatal("late completion accepted")
	}
	if got := c.Results()[0].Payload; got != "fast" {
		t.Fatalf("merged payload = %v, want the first finisher's", got)
	}
}

func TestAdjustmentDeclinesWhenNoGain(t *testing.T) {
	// Fig. 5: an SSE core asking while an equally slow SSE core holds the
	// last task gains nothing, so the master does not replicate.
	c := NewCoordinator(mkTasks(1), Config{Policy: SS{}, Adjust: true})
	s1 := c.Register(SlaveInfo{Name: "sse1"}, 0)
	s2 := c.Register(SlaveInfo{Name: "sse2"}, 0)
	c.ProgressRate(s1, 1000, 0, 0)
	c.ProgressRate(s2, 1000, 0, 0)
	c.RequestWork(s1, 0)
	got, _ := c.RequestWork(s2, 0)
	if got != nil {
		t.Fatalf("equal-speed replica granted: %v", got)
	}
}

func TestAdjustmentDisabled(t *testing.T) {
	c, ids := newCoord(1, Config{Policy: SS{}, Adjust: false})
	c.RequestWork(ids[1], 0)
	got, _ := c.RequestWork(ids[0], 0)
	if got != nil {
		t.Fatalf("adjustment disabled but got %v", got)
	}
}

func TestAdjustmentUnknownSpeedsFallsBackToOldest(t *testing.T) {
	c := NewCoordinator(mkTasks(2), Config{Policy: SS{}, Adjust: true})
	s1 := c.Register(SlaveInfo{Name: "a"}, 0)
	s2 := c.Register(SlaveInfo{Name: "b"}, 0)
	s3 := c.Register(SlaveInfo{Name: "c"}, 0)
	c.RequestWork(s1, 0)        // task 0, started at 0
	c.RequestWork(s2, sec(0.5)) // task 1, started at 0.5
	got, replica := c.RequestWork(s3, sec(1))
	if len(got) != 1 || !replica || got[0].ID != 0 {
		t.Fatalf("fallback replica = %v, want oldest task 0", got)
	}
}

func TestAdjustmentNeverAssignsOwnTask(t *testing.T) {
	c := NewCoordinator(mkTasks(1), Config{Policy: SS{}, Adjust: true})
	s1 := c.Register(SlaveInfo{Name: "a"}, 0)
	first, _ := c.RequestWork(s1, 0)
	// Asking again while still holding the task means the Assign reply was
	// lost: the slave gets its own outstanding task back as a
	// retransmission (replica=false), never as an adjustment replica.
	got, replica := c.RequestWork(s1, sec(1))
	if replica {
		t.Fatalf("slave received its own task as replica: %v", got)
	}
	if len(got) != 1 || got[0].ID != first[0].ID {
		t.Fatalf("retransmission = %v, want outstanding task %v", got, first)
	}
}

func TestRequestRetransmitsLostGrant(t *testing.T) {
	c, ids := newCoord(2, Config{Policy: SS{}})
	first, _ := c.RequestWork(ids[0], 0)
	// The grant was recorded but the response never arrived; the slave asks
	// again and must receive the same task, not a second one.
	again, replica := c.RequestWork(ids[0], sec(1))
	if replica || len(again) != 1 || again[0].ID != first[0].ID {
		t.Fatalf("retransmission = %v (replica=%t), want %v", again, replica, first)
	}
	if log := c.AssignmentLog(); len(log) != 1 {
		t.Fatalf("retransmission polluted the assignment log: %v", log)
	}
	// Once the task completes the slave is genuinely idle again and the
	// next request grants fresh work.
	c.Complete(ids[0], first[0].ID, nil, sec(2))
	next, _ := c.RequestWork(ids[0], sec(3))
	if len(next) != 1 || next[0].ID == first[0].ID {
		t.Fatalf("post-completion grant = %v, want a fresh task", next)
	}
}

func TestSlaveDiedRequeuesTasks(t *testing.T) {
	c, ids := newCoord(2, Config{Policy: SS{}})
	tasks, _ := c.RequestWork(ids[0], 0)
	c.SlaveDied(ids[0])
	if c.Pool().StateOf(tasks[0].ID) != Ready {
		t.Fatal("dead slave's task not requeued")
	}
	// Dead slaves get nothing.
	if got, _ := c.RequestWork(ids[0], sec(1)); got != nil {
		t.Fatal("dead slave received work")
	}
	// The survivor picks the task back up.
	got, _ := c.RequestWork(ids[1], sec(1))
	if len(got) != 1 || got[0].ID != tasks[0].ID {
		t.Fatalf("survivor got %v", got)
	}
}

func TestAbandonViaCoordinator(t *testing.T) {
	c, ids := newCoord(1, Config{Policy: SS{}})
	tasks, _ := c.RequestWork(ids[0], 0)
	c.Abandon(ids[0], tasks[0].ID)
	if c.Pool().StateOf(tasks[0].ID) != Ready {
		t.Fatal("abandoned task not requeued")
	}
}

func TestAssignmentLog(t *testing.T) {
	c, ids := newCoord(3, Config{Policy: SS{}, Adjust: true})
	c.RequestWork(ids[0], 0)
	c.RequestWork(ids[1], sec(1))
	log := c.AssignmentLog()
	if len(log) != 2 || log[0].Slave != ids[0] || log[1].Time != sec(1) {
		t.Fatalf("log = %v", log)
	}
	if log[0].Replica {
		t.Error("normal grant marked as replica")
	}
}

func TestSpeedOfFallsBackToDeclared(t *testing.T) {
	c := NewCoordinator(mkTasks(1), Config{})
	id := c.Register(SlaveInfo{Name: "g", DeclaredSpeed: 123}, 0)
	if got := c.SpeedOf(id); got != 123 {
		t.Fatalf("SpeedOf = %v, want declared 123", got)
	}
	c.ProgressRate(id, 999, 0, sec(1))
	if got := c.SpeedOf(id); got != 999 {
		t.Fatalf("SpeedOf = %v, want observed 999", got)
	}
}

func TestSlaveKindString(t *testing.T) {
	if KindCPU.String() != "CPU" || KindGPU.String() != "GPU" || SlaveKind(5).String() == "" {
		t.Error("kind strings wrong")
	}
}

func TestProgressDeltaPath(t *testing.T) {
	c := NewCoordinator(mkTasks(4), Config{Policy: &PSS{}})
	id := c.Register(SlaveInfo{Name: "s"}, 0)
	c.Progress(id, 0, 0)
	c.Progress(id, 2000, sec(1))
	if got := c.SpeedOf(id); got != 2000 {
		t.Fatalf("SpeedOf after delta notifications = %v, want 2000", got)
	}
}

func TestCompleteByNonExecutorIsRejected(t *testing.T) {
	c, ids := newCoord(1, Config{Policy: SS{}})
	// Slave 1 never took the task; its completion must be discarded
	// without panicking and without finishing the task.
	ok, cancel := c.Complete(ids[1], 0, "forged", 0)
	if ok || cancel != nil {
		t.Fatalf("forged completion accepted: %v %v", ok, cancel)
	}
	if c.Pool().StateOf(0) != Ready {
		t.Fatal("task state corrupted by forged completion")
	}
	// The legitimate path still works afterwards.
	tasks, _ := c.RequestWork(ids[0], 0)
	if ok, _ := c.Complete(ids[0], tasks[0].ID, "real", sec(1)); !ok {
		t.Fatal("legitimate completion rejected")
	}
}
