package slave

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/sched"
	"repro/internal/seq"
	"repro/internal/wire"
)

// Options tunes the slave loop.
type Options struct {
	// NotifyEvery is the minimum interval between progress notifications.
	NotifyEvery time.Duration
	// Poll is how long to stand by before re-asking when the master had
	// nothing for us.
	Poll time.Duration
	// TopK bounds how many hits per task travel back to the master;
	// 0 means all.
	TopK int
	// AlignBest runs the traceback phase for the best hit of every task
	// (engines implementing Aligner only) and ships the alignment rows.
	AlignBest bool

	// Reconnect re-establishes the master connection after a failed call.
	// When set, Run survives transient faults: it closes the broken
	// caller, backs off, dials a fresh one through this function and
	// re-registers under a new SlaveID (the master's lease expires the old
	// one, requeueing any task this slave was holding). That is what lets
	// a slave ride out a master restart from checkpoint, or its own lease
	// expiry after a long stall. nil keeps the historical behaviour: the
	// first failed call aborts Run.
	Reconnect func() (wire.Caller, error)
	// MaxRetries bounds *consecutive* failed reconnect attempts before Run
	// gives up; the counter resets whenever a session completes a round
	// trip. <=0 means DefaultMaxRetries.
	MaxRetries int
	// Backoff shapes the delay between reconnect attempts; zero fields
	// fall back to wire.DefaultBackoff.
	Backoff wire.Backoff
	// RetrySeed seeds the backoff jitter so tests are reproducible; 0
	// seeds from the wall clock.
	RetrySeed int64
	// Sleep, when non-nil, replaces time.Sleep for the reconnect backoff
	// and the standby poll. Tests inject a virtual clock here so retry
	// schedules are asserted on instead of waited out; nil uses the wall
	// clock.
	Sleep func(time.Duration)

	// Metrics, when non-nil, records task wall times, cells reported,
	// reconnections and backoff sleeps (see NewMetrics).
	Metrics *Metrics
}

// DefaultMaxRetries is the consecutive-reconnect-failure budget when
// Options.MaxRetries is unset.
const DefaultMaxRetries = 5

func (o *Options) fill() {
	if o.NotifyEvery <= 0 {
		o.NotifyEvery = 500 * time.Millisecond
	}
	if o.Poll <= 0 {
		o.Poll = 200 * time.Millisecond
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = DefaultMaxRetries
	}
	if o.RetrySeed == 0 {
		o.RetrySeed = time.Now().UnixNano()
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
}

// Run registers the engine with the master behind caller and executes the
// request/execute/notify loop until the master reports the job done. It
// returns the number of tasks this slave completed (accepted or not),
// summed across reconnections when Options.Reconnect is set.
func Run(caller wire.Caller, eng Engine, opts Options) (int, error) {
	opts.fill()
	rng := rand.New(rand.NewSource(opts.RetrySeed))
	completed := 0
	failures := 0
	for {
		n, progressed, err := runSession(caller, eng, opts)
		completed += n
		if err == nil {
			return completed, nil
		}
		if opts.Reconnect == nil {
			return completed, err
		}
		if progressed {
			// The dead master was reachable for a while; treat this as a
			// fresh outage rather than a continuation of the last one.
			failures = 0
		}
		_ = caller.Close()
		for {
			if failures >= opts.MaxRetries {
				return completed, fmt.Errorf("slave: giving up after %d reconnect attempts: %w", failures, err)
			}
			delay := opts.Backoff.Delay(failures, rng)
			if m := opts.Metrics; m != nil {
				m.BackoffSleeps.Inc()
				m.BackoffSeconds.Add(delay.Seconds())
			}
			opts.Sleep(delay)
			failures++
			next, derr := opts.Reconnect()
			if derr != nil {
				err = derr
				continue
			}
			caller = next
			if m := opts.Metrics; m != nil {
				m.Reconnects.Inc()
			}
			break
		}
	}
}

// runSession is one connection's worth of the slave loop: register, then
// request/execute/notify until the job finishes or a call fails.
// progressed reports whether any call succeeded, which gates the
// reconnect-failure counter reset in Run.
func runSession(caller wire.Caller, eng Engine, opts Options) (completed int, progressed bool, err error) {
	resp, err := caller.Call(wire.Envelope{Register: &wire.RegisterMsg{
		Name:          eng.Name(),
		Kind:          eng.Kind(),
		DeclaredSpeed: eng.DeclaredSpeed(),
		Caps:          EngineCaps(eng),
	}})
	if err != nil {
		return 0, false, err
	}
	if resp.RegisterAck == nil {
		return 0, true, fmt.Errorf("slave: master did not acknowledge registration")
	}
	id := resp.RegisterAck.Slave

	canceled := newCancelSet()
	if testCancelSet != nil {
		testCancelSet(canceled)
	}
	for {
		resp, err := caller.Call(wire.Envelope{Request: &wire.RequestMsg{Slave: id}})
		if err != nil {
			return completed, true, err
		}
		a := resp.Assign
		if a == nil {
			return completed, true, fmt.Errorf("slave: unexpected response to Request")
		}
		if a.Done {
			return completed, true, nil
		}
		if len(a.Tasks) == 0 {
			opts.Sleep(opts.Poll)
			continue
		}
		for _, spec := range a.Tasks {
			if canceled.has(spec.ID) {
				canceled.forget(spec.ID)
				continue
			}
			done, finished, err := runTask(caller, eng, id, spec, canceled, opts)
			// Canceled or completed tasks never run again on this slave
			// (the master only cancels finished tasks), so their cancel
			// bookkeeping can go — before this pruning, the ids/chans maps
			// grew for the life of the process.
			canceled.forget(spec.ID)
			if err != nil {
				return completed, true, err
			}
			if done {
				completed++
			}
			if finished {
				return completed, true, nil
			}
		}
	}
}

// runTask executes one task, streaming progress notifications and honoring
// cancellations that piggyback on their acknowledgements.
func runTask(caller wire.Caller, eng Engine, id sched.SlaveID, spec wire.TaskSpec, canceled *cancelSet, opts Options) (completed, jobDone bool, err error) {
	query := &seq.Sequence{ID: spec.QueryID, Residues: spec.Residues}
	var callErr error
	taskStart := time.Now()
	lastNotify := taskStart
	var lastCells int64
	progress := func(cells int64) {
		now := time.Now()
		elapsed := now.Sub(lastNotify)
		if elapsed < opts.NotifyEvery || callErr != nil {
			return
		}
		delta := cells - lastCells
		rate := float64(delta) / elapsed.Seconds()
		resp, err := caller.Call(wire.Envelope{Progress: &wire.ProgressMsg{Slave: id, Rate: rate, Cells: delta}})
		if err != nil {
			callErr = err
			// A dead master can no longer cancel this task, so cancel it
			// ourselves: closing the task's cancel channel aborts the
			// in-flight engine scan instead of grinding out the rest of
			// the database for a peer that will never hear the result.
			canceled.add([]sched.TaskID{spec.ID})
			return
		}
		if resp.ProgressAck != nil {
			canceled.add(resp.ProgressAck.Cancel)
		}
		if m := opts.Metrics; m != nil && delta > 0 {
			m.Cells.Add(float64(delta))
		}
		lastNotify, lastCells = now, cells
	}

	hits, windows, scanned, candidates, err := runStage(eng, spec, query, progress, canceled.channelFor(spec.ID))
	if callErr != nil {
		return false, false, callErr
	}
	if err == ErrCanceled {
		return false, false, nil
	}
	if err != nil {
		return false, false, fmt.Errorf("slave: task %d: %w", spec.ID, err)
	}
	top := TopK(hits, opts.TopK)
	if opts.AlignBest && len(top) > 0 && top[0].Score > 0 {
		if al, ok := eng.(Aligner); ok {
			if a, err := al.AlignHit(query, top[0].Index); err == nil {
				top[0].QueryRow, top[0].TargetRow = a.QueryRow, a.TargetRow
				top[0].QueryStart, top[0].QueryEnd = a.QueryStart, a.QueryEnd
				top[0].TargetStart, top[0].TargetEnd = a.TargetStart, a.TargetEnd
			}
		}
	}
	// The completion carries the final progress delta: everything since
	// the last notification. Only timer-gated notifications went out
	// above, so without this the tail of every task — or all of a short
	// one — never reached the master's speed and backlog accounting.
	finalCells := spec.Cells - lastCells
	var finalRate float64
	if el := time.Since(lastNotify); el > 0 && finalCells > 0 {
		finalRate = float64(finalCells) / el.Seconds()
	}
	if finalCells < 0 {
		finalCells = 0
	}
	resp, err := caller.Call(wire.Envelope{Complete: &wire.CompleteMsg{
		Slave: id, Task: spec.ID, Hits: top, Cells: finalCells, Rate: finalRate,
		Windows: windows, Scanned: scanned, Candidates: candidates,
	}})
	if err != nil {
		return false, false, err
	}
	if m := opts.Metrics; m != nil {
		m.TaskSeconds.Observe(time.Since(taskStart).Seconds())
		if finalCells > 0 {
			m.Cells.Add(float64(finalCells))
		}
	}
	if resp.CompleteAck != nil {
		canceled.add(resp.CompleteAck.Cancel)
		jobDone = resp.CompleteAck.Done
	}
	return true, jobDone, nil
}

// testCancelSet, when set by a test, receives each session's cancelSet so
// the pruning behaviour can be asserted from outside runSession.
var testCancelSet func(*cancelSet)

// cancelSet tracks canceled task IDs and exposes a close-once channel per
// task so engines can abort mid-scan. Entries are pruned (forget) once
// their task is done with on this slave, so the set stays bounded in
// long-running slaves.
type cancelSet struct {
	mu    sync.Mutex
	ids   map[sched.TaskID]bool
	chans map[sched.TaskID]chan struct{}
}

func newCancelSet() *cancelSet {
	return &cancelSet{ids: map[sched.TaskID]bool{}, chans: map[sched.TaskID]chan struct{}{}}
}

func (c *cancelSet) add(ids []sched.TaskID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range ids {
		if c.ids[id] {
			continue
		}
		c.ids[id] = true
		if ch, ok := c.chans[id]; ok {
			close(ch)
		}
	}
}

func (c *cancelSet) has(id sched.TaskID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ids[id]
}

// forget drops a task's bookkeeping once the slave is done with it —
// completed, skipped or canceled. The master only cancels tasks that
// finished elsewhere, and finished tasks are never re-assigned, so a
// forgotten ID cannot come back.
func (c *cancelSet) forget(id sched.TaskID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.ids, id)
	delete(c.chans, id)
}

// size reports how many tasks the set still tracks (tests).
func (c *cancelSet) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.ids) > len(c.chans) {
		return len(c.ids)
	}
	return len(c.chans)
}

func (c *cancelSet) channelFor(id sched.TaskID) <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch, ok := c.chans[id]
	if !ok {
		ch = make(chan struct{})
		c.chans[id] = ch
		if c.ids[id] {
			close(ch)
		}
	}
	return ch
}
