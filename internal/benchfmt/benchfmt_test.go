package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/sw
cpu: Intel(R) Xeon(R) CPU
BenchmarkKernelFarrar-8   	     100	  10123456 ns/op	  55.20 MCUPS	  123456 B/op	    1234 allocs/op
BenchmarkScoreScalar     	    5000	    250000 ns/op
PASS
ok  	repro/internal/sw	2.345s
pkg: repro/internal/sched
BenchmarkCoordinator-4   	   20000	     61000 ns/op	     512 B/op	       8 allocs/op
PASS
`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if s.Goos != "linux" || s.Goarch != "amd64" || s.CPU != "Intel(R) Xeon(R) CPU" {
		t.Errorf("headers = %+v", s)
	}
	if len(s.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(s.Results))
	}
	r := s.Results[0]
	if r.Name != "KernelFarrar" || r.Procs != 8 || r.Pkg != "repro/internal/sw" {
		t.Errorf("result 0 identity = %+v", r)
	}
	if r.Iters != 100 || r.NsPerOp != 10123456 || r.BytesPerOp != 123456 || r.AllocsPerOp != 1234 {
		t.Errorf("result 0 values = %+v", r)
	}
	if r.Custom["MCUPS"] != 55.20 {
		t.Errorf("custom metric = %v", r.Custom)
	}
	r = s.Results[1]
	if r.Name != "ScoreScalar" || r.Procs != 1 || r.BytesPerOp != -1 || r.AllocsPerOp != -1 {
		t.Errorf("result 1 = %+v", r)
	}
	if got := s.Results[2].Pkg; got != "repro/internal/sched" {
		t.Errorf("pkg tracking: %q", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX 12 34",            // odd pair count
		"BenchmarkX notanint 5 ns/op", // bad iterations
		"BenchmarkX 10 abc ns/op",     // bad value
		"BenchmarkX 10 5 MB/s",        // no ns/op at all
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	s, err := Parse(strings.NewReader("PASS\nok  \tx\t0.001s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 0 {
		t.Errorf("results = %+v", s.Results)
	}
}
