// Package slave implements the slave side of the task execution
// environment: the request/execute/notify loop of Fig. 4 plus the two
// execution engines the paper integrates — the adapted Farrar striped
// kernel for SSE cores (§IV-C) and the encapsulated CUDASW++-style engine
// for GPUs.
package slave

import (
	"fmt"

	"repro/internal/cudasw"
	"repro/internal/farrar"
	"repro/internal/prefilter"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/sw"
	"repro/internal/wire"
)

// ErrCanceled is returned by engines when the master canceled the task
// mid-execution (its replica finished first elsewhere).
var ErrCanceled = fmt.Errorf("slave: task canceled")

// Engine executes one task: the comparison of a query against the engine's
// resident database.
type Engine interface {
	// Name and Kind identify the engine at registration.
	Name() string
	Kind() sched.SlaveKind
	// DeclaredSpeed is the theoretical cells/second announced to the
	// master (used by the WFixed baseline); 0 means undeclared.
	DeclaredSpeed() float64
	// DatabaseResidues sizes tasks: cells = |query| * DatabaseResidues.
	DatabaseResidues() int64
	// Search scores query against the database, calling progress with the
	// cumulative cell count at reasonable intervals. It returns
	// ErrCanceled promptly after cancel is closed.
	Search(query *seq.Sequence, progress func(cellsDone int64), cancel <-chan struct{}) ([]wire.Hit, error)
}

// FarrarEngine is the SSE-core engine: one CPU core running the adapted
// Farrar striped Smith-Waterman (the SWAR kernel by default, with the
// emulated SSE2 ISA retained as its oracle).
type FarrarEngine struct {
	name     string
	scheme   score.Scheme
	db       []*seq.Sequence
	residues int64
	declared float64
	kmet     *farrar.Metrics
	pmet     *prefilter.Metrics
}

// SetKernelMetrics attaches the farrar fallback-telemetry bundle; each
// Search observes its kernel's aggregated tier stats on completion.
func (e *FarrarEngine) SetKernelMetrics(m *farrar.Metrics) { e.kmet = m }

// NewFarrarEngine builds an SSE-core engine over a resident database.
func NewFarrarEngine(name string, s score.Scheme, db []*seq.Sequence, declaredSpeed float64) (*FarrarEngine, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(db) == 0 {
		return nil, fmt.Errorf("slave: empty database")
	}
	e := &FarrarEngine{name: name, scheme: s, db: db, declared: declaredSpeed}
	for _, d := range db {
		e.residues += int64(d.Len())
	}
	return e, nil
}

// Name implements Engine.
func (e *FarrarEngine) Name() string { return e.name }

// Kind implements Engine.
func (e *FarrarEngine) Kind() sched.SlaveKind { return sched.KindCPU }

// DeclaredSpeed implements Engine.
func (e *FarrarEngine) DeclaredSpeed() float64 { return e.declared }

// DatabaseResidues implements Engine.
func (e *FarrarEngine) DatabaseResidues() int64 { return e.residues }

// Search implements Engine: the database is scanned sequentially (§IV-B:
// database files are processed sequentially on the PEs), one striped-kernel
// score per database sequence.
func (e *FarrarEngine) Search(query *seq.Sequence, progress func(int64), cancel <-chan struct{}) ([]wire.Hit, error) {
	kern, err := farrar.NewKernel(query.Residues, e.scheme)
	if err != nil {
		return nil, err
	}
	hits := make([]wire.Hit, len(e.db))
	var cells int64
	var sinceProgress int64
	const progressChunk = 1 << 22 // ~4M cells between progress callbacks
	for i, d := range e.db {
		select {
		case <-cancel:
			return nil, ErrCanceled
		default:
		}
		hits[i] = wire.Hit{SeqID: d.ID, Index: i, Score: kern.Score(d.Residues)}
		n := kern.Cells(d.Residues)
		cells += n
		sinceProgress += n
		if sinceProgress >= progressChunk && progress != nil {
			progress(cells)
			sinceProgress = 0
		}
	}
	if progress != nil {
		progress(cells)
	}
	e.kmet.Observe(kern.Stats())
	return hits, nil
}

// GPUEngine wraps the simulated CUDASW++ engine (§IV-C: "CUDASW was
// encapsulated and easily integrated to our tool").
type GPUEngine struct {
	name     string
	engine   *cudasw.Engine
	declared float64
	kmet     *farrar.Metrics
}

// SetKernelMetrics attaches the farrar fallback-telemetry bundle for the
// engine's real compute core.
func (e *GPUEngine) SetKernelMetrics(m *farrar.Metrics) { e.kmet = m }

// NewGPUEngine builds a GPU engine over a resident database.
func NewGPUEngine(name string, dev cudasw.Device, s score.Scheme, db []*seq.Sequence, declaredSpeed float64) (*GPUEngine, error) {
	eng, err := cudasw.NewEngine(dev, s, db)
	if err != nil {
		return nil, err
	}
	return &GPUEngine{name: name, engine: eng, declared: declaredSpeed}, nil
}

// Name implements Engine.
func (e *GPUEngine) Name() string { return e.name }

// Kind implements Engine.
func (e *GPUEngine) Kind() sched.SlaveKind { return sched.KindGPU }

// DeclaredSpeed implements Engine.
func (e *GPUEngine) DeclaredSpeed() float64 { return e.declared }

// DatabaseResidues implements Engine.
func (e *GPUEngine) DatabaseResidues() int64 { return e.engine.DatabaseResidues() }

// Search implements Engine. A GPU kernel launch is not interruptible, so
// cancellation is only observed between the search and the result return.
func (e *GPUEngine) Search(query *seq.Sequence, progress func(int64), cancel <-chan struct{}) ([]wire.Hit, error) {
	hits, rep, err := e.engine.Search(query.Residues, true)
	if err != nil {
		return nil, err
	}
	select {
	case <-cancel:
		return nil, ErrCanceled
	default:
	}
	if progress != nil {
		progress(rep.Cells)
	}
	e.kmet.Observe(rep.Kernel)
	out := make([]wire.Hit, len(hits))
	for i, h := range hits {
		out[i] = wire.Hit{SeqID: h.ID, Index: h.Index, Score: h.Score}
	}
	return out, nil
}

// TopK returns the k best hits under the module-wide ranking contract
// (wire.HitLess: score descending, database order on ties), the form
// results travel back to the master in.
func TopK(hits []wire.Hit, k int) []wire.Hit {
	if k <= 0 || k >= len(hits) {
		k = len(hits)
	}
	out := make([]wire.Hit, len(hits))
	copy(out, hits)
	wire.SortHits(out)
	return out[:k]
}

// Aligner is implemented by engines that can run the traceback phase
// (§II-A phase 2) for one database hit.
type Aligner interface {
	// AlignHit recovers the optimal local alignment of the query against
	// database sequence hitIndex.
	AlignHit(query *seq.Sequence, hitIndex int) (*sw.Alignment, error)
}

// AlignHit implements Aligner with the linear-space traceback, so phase 2
// works even for the 5,000-residue queries of the paper's workload.
func (e *FarrarEngine) AlignHit(query *seq.Sequence, hitIndex int) (*sw.Alignment, error) {
	if hitIndex < 0 || hitIndex >= len(e.db) {
		return nil, fmt.Errorf("slave: hit index %d out of range", hitIndex)
	}
	return sw.AlignLinearSpace(query.Residues, e.db[hitIndex].Residues, e.scheme), nil
}
