package sched

import (
	"math"
	"testing"
	"time"
)

func TestHistoryWeightedMean(t *testing.T) {
	h := NewHistory(3)
	if _, ok := h.Speed(); ok {
		t.Fatal("empty history reported a speed")
	}
	h.ObserveRate(100, 0)
	v, ok := h.Speed()
	if !ok || v != 100 {
		t.Fatalf("single sample speed = %v %v", v, ok)
	}
	h.ObserveRate(200, time.Second)
	// weights: newest(200)*3? window=3: newest weight 3, older weight 2:
	// (3*200 + 2*100)/5 = 160
	v, _ = h.Speed()
	if math.Abs(v-160) > 1e-9 {
		t.Fatalf("two-sample weighted mean = %v, want 160", v)
	}
	// Fill past the window; the first sample must fall out.
	h.ObserveRate(300, 2*time.Second)
	h.ObserveRate(400, 3*time.Second)
	// window samples newest->oldest: 400,300,200 weights 3,2,1
	want := (3.0*400 + 2*300 + 1*200) / 6
	v, _ = h.Speed()
	if math.Abs(v-want) > 1e-9 {
		t.Fatalf("windowed mean = %v, want %v", v, want)
	}
	if h.Samples() != 3 {
		t.Fatalf("Samples = %d, want 3", h.Samples())
	}
}

func TestHistoryObserveDeltas(t *testing.T) {
	h := NewHistory(4)
	h.Observe(0, 0)                // anchors the timebase
	h.Observe(500, time.Second)    // 500 cells/s
	h.Observe(1000, 2*time.Second) // 1000 cells/s
	v, ok := h.Speed()
	if !ok {
		t.Fatal("no speed after observations")
	}
	// weights 4 (newest=1000) and 3 (500): (4000+1500)/7
	want := (4.0*1000 + 3*500) / 7
	if math.Abs(v-want) > 1e-9 {
		t.Fatalf("speed = %v, want %v", v, want)
	}
	// Garbage notifications are ignored.
	h.Observe(-5, 3*time.Second)
	h.Observe(100, 3*time.Second) // zero elapsed
	if v2, _ := h.Speed(); v2 != v {
		t.Fatal("invalid notifications changed the estimate")
	}
}

func TestHistoryDefaultOmega(t *testing.T) {
	h := NewHistory(0)
	if h.omega != DefaultOmega {
		t.Fatalf("omega = %d, want default %d", h.omega, DefaultOmega)
	}
}

func TestSSGrantsOne(t *testing.T) {
	p := SS{}
	if got := p.Grant(Request{Ready: 10}); got != 1 {
		t.Errorf("SS grant = %d, want 1", got)
	}
	if got := p.Grant(Request{Ready: 0}); got != 0 {
		t.Errorf("SS grant on empty = %d, want 0", got)
	}
	if p.Name() != "SS" {
		t.Error("name")
	}
}

func TestPSSFirstAllocationIsOne(t *testing.T) {
	p := &PSS{}
	req := Request{Slave: 0, Ready: 20, Slaves: 4, Speeds: make([]float64, 4)}
	if got := p.Grant(req); got != 1 {
		t.Errorf("PSS with no history = %d, want 1", got)
	}
}

func TestPSSFig5Ratio(t *testing.T) {
	// The paper's Fig. 5 walkthrough: a GPU measured 6x faster than the
	// SSE cores receives 6 tasks per request.
	p := &PSS{}
	req := Request{Slave: 0, Ready: 16, Slaves: 4, Speeds: []float64{6000, 1000, 1000, 1000}}
	if got := p.Grant(req); got != 6 {
		t.Errorf("PSS grant = %d, want 6", got)
	}
	// The slow cores get 1.
	req.Slave = 2
	if got := p.Grant(req); got != 1 {
		t.Errorf("PSS slow grant = %d, want 1", got)
	}
}

func TestPSSClampsToReady(t *testing.T) {
	p := &PSS{}
	req := Request{Slave: 0, Ready: 3, Slaves: 2, Speeds: []float64{9000, 1000}}
	if got := p.Grant(req); got != 3 {
		t.Errorf("PSS grant = %d, want clamp to 3", got)
	}
}

func TestPSSMaxBurst(t *testing.T) {
	p := &PSS{MaxBurst: 4}
	req := Request{Slave: 0, Ready: 100, Slaves: 2, Speeds: []float64{9000, 1000}}
	if got := p.Grant(req); got != 4 {
		t.Errorf("PSS burst-capped grant = %d, want 4", got)
	}
}

func TestPSSUnknownOthers(t *testing.T) {
	// Only the requester has history: it is also the slowest known, Φ=1.
	p := &PSS{}
	req := Request{Slave: 0, Ready: 10, Slaves: 3, Speeds: []float64{5000, 0, 0}}
	if got := p.Grant(req); got != 1 {
		t.Errorf("PSS grant = %d, want 1", got)
	}
}

func TestFixedEvenSplit(t *testing.T) {
	p := &Fixed{}
	base := Request{Total: 20, Slaves: 4}
	ready := 20
	var got []int
	for s := 0; s < 4; s++ {
		n := p.Grant(Request{Slave: SlaveID(s), Ready: ready, Total: base.Total, Slaves: base.Slaves})
		got = append(got, n)
		ready -= n
	}
	if got[0] != 5 || got[1] != 5 || got[2] != 5 || got[3] != 5 {
		t.Errorf("Fixed split = %v, want 5 each", got)
	}
	if n := p.Grant(Request{Slave: 0, Ready: ready, Total: 20, Slaves: 4}); n != 0 {
		t.Errorf("Fixed second request = %d, want 0", n)
	}
}

func TestFixedRemainderToLast(t *testing.T) {
	p := &Fixed{}
	ready := 10
	var got []int
	for s := 0; s < 3; s++ {
		n := p.Grant(Request{Slave: SlaveID(s), Ready: ready, Total: 10, Slaves: 3})
		got = append(got, n)
		ready -= n
	}
	if got[0]+got[1]+got[2] != 10 {
		t.Errorf("Fixed split %v does not cover all tasks", got)
	}
}

func TestWFixedProportionalSplit(t *testing.T) {
	p := &WFixed{}
	decl := []float64{6000, 1000, 1000}
	ready := 16
	var got []int
	for s := 0; s < 3; s++ {
		n := p.Grant(Request{Slave: SlaveID(s), Ready: ready, Total: 16, Slaves: 3, DeclaredSpeeds: decl})
		got = append(got, n)
		ready -= n
	}
	if got[0] != 12 {
		t.Errorf("WFixed fast share = %d, want 12 (6/8 of 16)", got[0])
	}
	if got[0]+got[1]+got[2] != 16 {
		t.Errorf("WFixed split %v does not cover all tasks", got)
	}
}

func TestWFixedNoDeclarationsFallsBack(t *testing.T) {
	p := &WFixed{}
	n := p.Grant(Request{Slave: 0, Ready: 9, Total: 9, Slaves: 3, DeclaredSpeeds: []float64{0, 0, 0}})
	if n != 3 {
		t.Errorf("WFixed fallback = %d, want even share 3", n)
	}
}

func TestNewPolicy(t *testing.T) {
	for _, name := range []string{"SS", "pss", "Fixed", "WFIXED", "PSS:4"} {
		if _, err := NewPolicy(name); err != nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
		}
	}
	if _, err := NewPolicy("magic"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewPolicy("PSS:x"); err == nil {
		t.Error("bad PSS burst accepted")
	}
	p, _ := NewPolicy("PSS:7")
	if p.(*PSS).MaxBurst != 7 {
		t.Error("PSS burst not parsed")
	}
}

func TestPolicyNames(t *testing.T) {
	if (&PSS{}).Name() != "PSS" || (&Fixed{}).Name() != "Fixed" || (&WFixed{}).Name() != "WFixed" {
		t.Error("policy names wrong")
	}
}
