// Package lockguard is the golden fixture for the mutex-discipline
// analyzer: mu guards the contiguous field group below it, methods
// touching that group must lock (or be named *Locked), and lock values
// must never be copied.
package lockguard

import "sync"

// Counter follows the repo convention: name (above mu) is immutable,
// mu guards n and last.
type Counter struct {
	name string

	mu   sync.Mutex
	n    int
	last int64
}

// Inc locks before touching guarded state: clean.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// bump forgets the lock entirely — the failure mode the analyzer exists
// to catch.
func (c *Counter) bump() {
	c.n++ // want "accesses Counter.n, which Counter.mu guards, without locking mu"
}

// drainLocked follows the caller-holds-the-lock naming convention: clean.
func (c *Counter) drainLocked() int {
	n := c.n
	c.n = 0
	return n
}

// Label reads only the unguarded field, but a value receiver copies the
// mutex itself.
func (c Counter) Label() string { // want "value receiver but Counter contains a sync.Mutex"
	return c.name
}

// clone copies a held lock through a struct literal.
func clone(c *Counter) *Counter {
	return &Counter{mu: c.mu} // want "struct literal copies a sync.Mutex value"
}

// fresh initialises the mutex field from a fresh composite literal,
// which copies nothing: clean.
func fresh() *Counter {
	return &Counter{mu: sync.Mutex{}}
}

// Queue shows the group boundary: the blank line after items ends mu's
// guard, so closed is unguarded and IsClosed needs no lock.
type Queue struct {
	mu    sync.Mutex
	items []int

	closed bool
}

func (q *Queue) IsClosed() bool { return q.closed }

func (q *Queue) Push(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, v)
}
