// Package httpapi exposes the hybrid search engine as a small REST service
// (cmd/swserve): a database is loaded at startup and queries are submitted
// over HTTP, making the task execution environment usable from any
// language. JSON in, JSON out, stdlib only.
//
// Every route runs behind a middleware stack (request IDs, a body-size
// cap, request metrics and an optional access log), and the server's
// metrics registry — shared with the search platform, so scheduler, wire
// and slave families accumulate across requests — is exposed at
// GET /metrics (Prometheus text exposition) and GET /varz (JSON).
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	hybridsw "repro"
	"repro/internal/fasta"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/seq"
	"repro/internal/slave"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Server serves search requests against one resident database.
type Server struct {
	db       []*seq.Sequence
	dbName   string
	residues int64
	platform hybridsw.Platform
	started  time.Time
	reg      *metrics.Registry
	met      *httpMetrics
	maxBody  int64

	// Log, when non-nil, receives one access-log line per request
	// (method, path, status, latency, request ID). Set it before Handler
	// is served.
	Log *log.Logger
}

// New builds a server over a database with a default platform configuration
// (individual request fields can override parts of it). If
// platform.Registry is nil a fresh registry is created; either way every
// search instruments into the registry that /metrics serves.
func New(dbName string, db []*seq.Sequence, platform hybridsw.Platform) (*Server, error) {
	if len(db) == 0 {
		return nil, fmt.Errorf("httpapi: empty database")
	}
	reg := platform.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
		platform.Registry = reg
	}
	// Pre-register the scheduler, wire and slave families so a scrape
	// before the first search already shows the full taxonomy.
	sched.NewMetrics(reg)
	wire.NewMetrics(reg)
	slave.NewMetrics(reg)
	s := &Server{
		db: db, dbName: dbName, platform: platform, started: time.Now(),
		reg: reg, met: newHTTPMetrics(reg), maxBody: DefaultMaxBody,
	}
	for _, d := range db {
		s.residues += int64(d.Len())
	}
	return s, nil
}

// Registry returns the server's metrics registry (the one /metrics
// serves).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /database", s.instrument("database", s.handleDatabase))
	mux.HandleFunc("POST /search", s.instrument("search", s.handleSearch))
	mux.HandleFunc("POST /align", s.instrument("align", s.handleAlign))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.reg.Handler().ServeHTTP))
	mux.HandleFunc("GET /varz", s.instrument("varz", s.reg.VarzHandler().ServeHTTP))
	return mux
}

// decodeJSON decodes the request body into v, writing the appropriate
// error response (413 when the body-size cap fired, 400 otherwise) and
// returning false on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return false
		}
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleDatabase(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"name":      s.dbName,
		"sequences": len(s.db),
		"residues":  s.residues,
	})
}

// SearchRequest is the POST /search payload.
type SearchRequest struct {
	// QueriesFasta holds one or more FASTA records.
	QueriesFasta string `json:"queries_fasta"`
	TopK         int    `json:"top_k,omitempty"`
	Policy       string `json:"policy,omitempty"`
	Align        bool   `json:"align,omitempty"`
}

// SearchHit is one reported hit.
type SearchHit struct {
	SeqID  string   `json:"seq_id"`
	Score  int      `json:"score"`
	EValue *float64 `json:"evalue,omitempty"`

	QueryRow  string `json:"query_row,omitempty"`
	TargetRow string `json:"target_row,omitempty"`
}

// SearchResult is one query's outcome.
type SearchResult struct {
	Query string      `json:"query"`
	Hits  []SearchHit `json:"hits"`
}

// SearchResponse is the POST /search reply.
type SearchResponse struct {
	Results  []SearchResult `json:"results"`
	Elapsed  float64        `json:"elapsed_s"`
	GCUPS    float64        `json:"gcups"`
	Database string         `json:"database"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	queries, err := fasta.NewReader(strings.NewReader(req.QueriesFasta)).ReadAll()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "queries_fasta: %v", err)
		return
	}
	if len(queries) == 0 {
		writeErr(w, http.StatusBadRequest, "queries_fasta contains no sequences")
		return
	}
	p := s.platform
	if req.TopK > 0 {
		p.TopK = req.TopK
	}
	if req.Policy != "" {
		p.Policy = req.Policy
	}
	p.AlignBest = req.Align

	rep, err := hybridsw.Search(queries, s.db, p)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "search: %v", err)
		return
	}
	scheme := p.Scheme
	if scheme.Matrix == nil {
		scheme = hybridsw.DefaultScheme()
	}
	params, haveStats := stats.Lookup(scheme)
	queryLen := map[string]int{}
	for _, q := range queries {
		queryLen[q.ID] = q.Len()
	}
	resp := SearchResponse{
		Elapsed:  rep.Elapsed.Seconds(),
		GCUPS:    rep.GCUPS(),
		Database: s.dbName,
	}
	for _, qr := range rep.PerQuery {
		res := SearchResult{Query: qr.Query}
		for _, h := range qr.Hits {
			hit := SearchHit{SeqID: h.SeqID, Score: h.Score}
			if haveStats {
				e := params.EValue(h.Score, queryLen[qr.Query], s.residues)
				hit.EValue = &e
			}
			if len(h.QueryRow) > 0 {
				hit.QueryRow = string(h.QueryRow)
				hit.TargetRow = string(h.TargetRow)
			}
			res.Hits = append(res.Hits, hit)
		}
		resp.Results = append(resp.Results, res)
	}
	writeJSON(w, http.StatusOK, resp)
}

// AlignRequest is the POST /align payload: two literal sequences.
type AlignRequest struct {
	A      string `json:"a"`
	B      string `json:"b"`
	Global bool   `json:"global,omitempty"`
}

// AlignResponse is the POST /align reply.
type AlignResponse struct {
	Score     int     `json:"score"`
	Identity  float64 `json:"identity"`
	QueryRow  string  `json:"query_row"`
	TargetRow string  `json:"target_row"`
}

func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	var req AlignRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.A == "" || req.B == "" {
		writeErr(w, http.StatusBadRequest, "both a and b are required")
		return
	}
	scheme := hybridsw.DefaultScheme()
	a := hybridsw.Align([]byte(strings.ToUpper(req.A)), []byte(strings.ToUpper(req.B)), scheme)
	writeJSON(w, http.StatusOK, AlignResponse{
		Score:     a.Score,
		Identity:  a.Identity(),
		QueryRow:  string(a.QueryRow),
		TargetRow: string(a.TargetRow),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
