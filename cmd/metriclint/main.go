// Command metriclint enforces the repository's metric naming convention
// (subsystem_name_unit; counters end in _total, gauges must not,
// histogram names carry a unit suffix — see metrics.CheckName).
//
// It is kept as a thin alias for `swcheck -only metricname`: the check
// itself now lives in internal/analysis (MetricNameAnalyzer), where it
// runs type-checked alongside the rest of the suite. Directory arguments
// are accepted for backwards compatibility with the original linter and
// are walked recursively; the default is the whole module.
//
// Usage:
//
//	metriclint [dir ...]   # default: the enclosing module
package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(2)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(2)
	}
	patterns := []string{"./..."}
	if args := os.Args[1:]; len(args) > 0 {
		patterns = nil
		for _, dir := range args {
			patterns = append(patterns, dir+"/...")
		}
	}
	n, err := analysis.Run(root, patterns, []*analysis.Analyzer{analysis.MetricNameAnalyzer}, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(1)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "metriclint: %d bad metric name(s)\n", n)
		os.Exit(1)
	}
}
