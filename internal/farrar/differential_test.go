package farrar

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/sw"
)

// diffSchemes is the scheme matrix the differential tests sweep: the
// defaults, lazy-F-heavy combinations (cheap gaps, harsh mismatches),
// linear gaps (open = 0 <= extend, the pathological ordering of the
// lazy-F satellite), an all-negative matrix (best is always 0), and an
// all-positive matrix (Min > 0, the padding-lane regression).
func diffSchemes(t testing.TB) []score.Scheme {
	schemes := []score.Scheme{
		score.DefaultProtein(),
		{Matrix: score.BLOSUM50, Gap: score.AffineGap(12, 2)},
		{Matrix: score.NewMatchMismatch(seq.Protein, 4, -10), Gap: score.AffineGap(1, 1)},
		{Matrix: score.BLOSUM62, Gap: score.LinearGap(1)},
		{Matrix: score.NewMatchMismatch(seq.Protein, 2, -1), Gap: score.LinearGap(3)},
		{Matrix: score.NewMatchMismatch(seq.Protein, -1, -3), Gap: score.AffineGap(2, 1)},
		{Matrix: score.NewMatchMismatch(seq.Protein, 3, 1), Gap: score.AffineGap(5, 2)},
	}
	for i, s := range schemes {
		if err := s.Validate(); err != nil {
			t.Fatalf("scheme %d invalid: %v", i, err)
		}
	}
	return schemes
}

// kernelPair builds the same query under both implementations.
func kernelPair(t testing.TB, q []byte, s score.Scheme) (swar, emu *Kernel) {
	t.Helper()
	ks, err := NewKernelImpl(q, s, ImplSWAR)
	if err != nil {
		t.Fatalf("swar kernel: %v", err)
	}
	ke, err := NewKernelImpl(q, s, ImplEmulated)
	if err != nil {
		t.Fatalf("emulated kernel: %v", err)
	}
	return ks, ke
}

// checkDifferential runs one (query, target) pair through every tier of
// both implementations and the scalar reference, failing on any
// disagreement: per-tier (score, ok) pairs must be identical between the
// implementations, and the full ladder must land on the reference score.
func checkDifferential(t *testing.T, ks, ke *Kernel, d []byte, want int) {
	t.Helper()
	s8s, ok8s := ks.Score8(d)
	s8e, ok8e := ke.Score8(d)
	if s8s != s8e || ok8s != ok8e {
		t.Fatalf("8-bit tier diverged: swar=(%d,%v) emulated=(%d,%v)\nq=%s\nd=%s",
			s8s, ok8s, s8e, ok8e, ks.Query(), d)
	}
	s16s, ok16s := ks.Score16(d)
	s16e, ok16e := ke.Score16(d)
	if s16s != s16e || ok16s != ok16e {
		t.Fatalf("16-bit tier diverged: swar=(%d,%v) emulated=(%d,%v)\nq=%s\nd=%s",
			s16s, ok16s, s16e, ok16e, ks.Query(), d)
	}
	if ok8s && s8s != want {
		t.Fatalf("8-bit tier wrong: got %d, reference %d\nq=%s\nd=%s", s8s, want, ks.Query(), d)
	}
	if ok16s && s16s != want {
		t.Fatalf("16-bit tier wrong: got %d, reference %d\nq=%s\nd=%s", s16s, want, ks.Query(), d)
	}
	if got := ks.Score(d); got != want {
		t.Fatalf("swar ladder: got %d, reference %d\nq=%s\nd=%s", got, want, ks.Query(), d)
	}
	if got := ke.Score(d); got != want {
		t.Fatalf("emulated ladder: got %d, reference %d\nq=%s\nd=%s", got, want, ke.Query(), d)
	}
}

// TestDifferentialSWARvsEmulatedVsScalar is the tentpole's acceptance
// test: random sequences × schemes, SWAR vs emulated vs scalar, with the
// tier decisions (via Stats) required to be identical across
// implementations — the dispatch switch must be invisible to callers.
func TestDifferentialSWARvsEmulatedVsScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD1FF))
	for si, s := range diffSchemes(t) {
		for iter := 0; iter < 30; iter++ {
			q := randProtein(rng, 1+rng.Intn(150))
			ks, ke := kernelPair(t, q, s)
			targets := [][]byte{
				mutate(rng, q, 0.3),
				randProtein(rng, 1+rng.Intn(300)),
				randProtein(rng, 1),
				nil,
			}
			for _, d := range targets {
				checkDifferential(t, ks, ke, d, sw.Score(q, d, s))
			}
			if ks.Stats() != ke.Stats() {
				t.Fatalf("scheme %d iter %d: tier stats diverged: swar=%+v emulated=%+v",
					si, iter, ks.Stats(), ke.Stats())
			}
		}
	}
}

// TestDifferentialOverflowLadder drives both implementations through all
// three rungs: a long self-alignment overflows 8-bit into 16-bit, and a
// homopolymer monster overflows 16-bit into the scalar reference.
func TestDifferentialOverflowLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1ADD))
	s := protScheme()

	q := randProtein(rng, 600) // self-score ~> 255-bias, < 32767
	ks, ke := kernelPair(t, q, s)
	checkDifferential(t, ks, ke, q, sw.Score(q, q, s))
	for name, st := range map[string]Stats{"swar": ks.Stats(), "emulated": ke.Stats()} {
		if st.Fallback16 == 0 || st.FallbackSW != 0 {
			t.Fatalf("%s: expected a 16-bit fallback, stats %+v", name, st)
		}
	}

	// 3000 tryptophans self-align to 3000*BLOSUM62(W,W) = 33000 > 32767.
	w := make([]byte, 3000)
	for i := range w {
		w[i] = 'W'
	}
	ks, ke = kernelPair(t, w, s)
	checkDifferential(t, ks, ke, w, sw.Score(w, w, s))
	for name, st := range map[string]Stats{"swar": ks.Stats(), "emulated": ke.Stats()} {
		if st.FallbackSW == 0 {
			t.Fatalf("%s: expected a scalar fallback, stats %+v", name, st)
		}
	}
}

// TestTierBoundary253to256 pins the corrected overflow threshold: with
// match=+1/mismatch=-1 the bias is 1, so the 8-bit tier's ceiling is
// 255-bias = 254 and a score of 253 is the largest it may certify.
// Self-alignments of length L score exactly L, putting 253 in the 8-bit
// tier and 254/255/256 in the 16-bit tier — for both implementations.
// (Before the threshold audit the ceiling was documented as 255, which
// would misfile 254 as certifiable.)
func TestTierBoundary253to256(t *testing.T) {
	s := score.Scheme{Matrix: score.NewMatchMismatch(seq.Protein, 1, -1), Gap: score.AffineGap(10, 2)}
	for _, tc := range []struct {
		length int
		tier8  bool
	}{
		{253, true},
		{254, false},
		{255, false},
		{256, false},
	} {
		q := make([]byte, tc.length)
		for i := range q {
			q[i] = 'A'
		}
		ks, ke := kernelPair(t, q, s)
		for name, k := range map[string]*Kernel{"swar": ks, "emulated": ke} {
			if got := k.Score(q); got != tc.length {
				t.Fatalf("%s len %d: score %d, want %d", name, tc.length, got, tc.length)
			}
			st := k.Stats()
			in8 := st.Scored8 == 1 && st.Fallback16 == 0 && st.FallbackSW == 0
			in16 := st.Scored8 == 0 && st.Fallback16 == 1 && st.FallbackSW == 0
			if tc.tier8 && !in8 {
				t.Fatalf("%s: score %d should resolve in the 8-bit tier, stats %+v", name, tc.length, st)
			}
			if !tc.tier8 && !in16 {
				t.Fatalf("%s: score %d should fall back to the 16-bit tier, stats %+v", name, tc.length, st)
			}
		}
	}
}

// TestLazyFPathologicalSchemes targets the lazy-F satellite: gap-open <=
// gap-extend and all-negative matrices keep the F carry alive as long as
// anything can, the regime where striped kernels historically spun or
// returned uncorrected columns. The bounded guard now escalates instead
// of silently continuing, so a mis-score is impossible; this test pins
// that the loops also terminate and agree with the reference.
func TestLazyFPathologicalSchemes(t *testing.T) {
	schemes := []score.Scheme{
		{Matrix: score.NewMatchMismatch(seq.Protein, 5, -20), Gap: score.LinearGap(1)},
		{Matrix: score.NewMatchMismatch(seq.Protein, 3, -12), Gap: score.AffineGap(1, 2)},
		{Matrix: score.NewMatchMismatch(seq.Protein, -2, -9), Gap: score.LinearGap(1)},
		{Matrix: score.BLOSUM62, Gap: score.AffineGap(0+1, 17)},
	}
	rng := rand.New(rand.NewSource(0xF00))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for si, s := range schemes {
			if err := s.Validate(); err != nil {
				t.Errorf("scheme %d: %v", si, err)
				return
			}
			for iter := 0; iter < 25; iter++ {
				q := randProtein(rng, 1+rng.Intn(120))
				d := mutate(rng, q, 0.6)
				ks, ke := kernelPair(t, q, s)
				checkDifferential(t, ks, ke, d, sw.Score(q, d, s))
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("lazy-F correction did not terminate on a pathological scheme")
	}
}

// TestExtremeSchemeWrapGuards is the regression for the silent
// fixed-point wraps the threshold audit found: gap penalties above 255
// wrapped in the uint8 splat and profile entries above 255 wrapped in the
// biased byte, producing wrong scores instead of a fallback. Such schemes
// must now skip the narrow tiers entirely and still score correctly.
func TestExtremeSchemeWrapGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(0xEC0))
	cases := []struct {
		name     string
		s        score.Scheme
		wantTier string
	}{
		// open+extend = 310 wraps uint8; the 16-bit tier must take over.
		{"gap_oe_over_255", score.Scheme{Matrix: score.BLOSUM62, Gap: score.AffineGap(300, 10)}, Tier16},
		// bias = 400 wraps the biased byte profile; 16-bit handles it.
		{"bias_over_255", score.Scheme{Matrix: score.NewMatchMismatch(seq.Protein, 2, -400), Gap: score.AffineGap(10, 2)}, Tier16},
		// open+extend = 34000 wraps int16 too; only the scalar tier is safe.
		{"gap_oe_over_32767", score.Scheme{Matrix: score.BLOSUM62, Gap: score.AffineGap(33000, 1000)}, TierScalar},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.s.Validate(); err != nil {
				t.Fatal(err)
			}
			for iter := 0; iter < 10; iter++ {
				q := randProtein(rng, 1+rng.Intn(100))
				d := mutate(rng, q, 0.4)
				ks, ke := kernelPair(t, q, tc.s)
				checkDifferential(t, ks, ke, d, sw.Score(q, d, tc.s))
				for name, st := range map[string]Stats{"swar": ks.Stats(), "emulated": ke.Stats()} {
					switch tc.wantTier {
					case Tier16:
						if st.Scored8 != 0 || st.FallbackSW != 0 {
							t.Fatalf("%s: wrapping scheme must resolve in the 16-bit tier, stats %+v", name, st)
						}
					case TierScalar:
						if st.Scored8 != 0 || st.Fallback16 != 0 {
							t.Fatalf("%s: wrapping scheme must resolve in the scalar tier, stats %+v", name, st)
						}
					}
				}
			}
		})
	}
}

// TestAllPositiveMatrixPadding is the padding-lane regression: with
// Min() > 0 the old profiles filled padding lanes with Min, letting
// phantom rows past the query end accumulate score and overtake the true
// maximum. Padding now holds the biased floor, so phantoms can never win.
func TestAllPositiveMatrixPadding(t *testing.T) {
	s := score.Scheme{Matrix: score.NewMatchMismatch(seq.Protein, 3, 1), Gap: score.AffineGap(5, 2)}
	rng := rand.New(rand.NewSource(0xBAD))
	for iter := 0; iter < 40; iter++ {
		// Short queries against longer targets maximise padding lanes and
		// phantom rows.
		q := randProtein(rng, 1+rng.Intn(20))
		d := randProtein(rng, 1+rng.Intn(200))
		ks, ke := kernelPair(t, q, s)
		checkDifferential(t, ks, ke, d, sw.Score(q, d, s))
	}
}

// TestStatsAdd covers the aggregation helper the parallel path relies on.
func TestStatsAdd(t *testing.T) {
	a := Stats{Scored8: 3, Fallback16: 2, FallbackSW: 1}
	b := Stats{Scored8: 10, Fallback16: 20, FallbackSW: 30}
	got := a.Add(b)
	want := Stats{Scored8: 13, Fallback16: 22, FallbackSW: 31}
	if got != want {
		t.Fatalf("Stats.Add = %+v, want %+v", got, want)
	}
	if got.Total() != 66 {
		t.Fatalf("Total = %d, want 66", got.Total())
	}
}

// FuzzFarrarVsScalar fuzzes both kernel implementations against the
// scalar reference over fuzzer-chosen sequences and gap penalties. Wired
// into make fuzz-smoke.
func FuzzFarrarVsScalar(f *testing.F) {
	f.Add([]byte("ACDEFGHIKLMNPQRSTVWY"), []byte("ACDEFGHIKLMNPQRSTVWY"), uint8(10), uint8(2), uint8(0))
	f.Add([]byte("WWWWWWWW"), []byte("WWWW"), uint8(0), uint8(1), uint8(1))
	f.Add([]byte("A"), []byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"), uint8(1), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, qRaw, dRaw []byte, open, extend, sel uint8) {
		const canon = "ACDEFGHIKLMNPQRSTVWY"
		clamp := func(raw []byte, n int) []byte {
			if len(raw) > n {
				raw = raw[:n]
			}
			out := make([]byte, len(raw))
			for i, c := range raw {
				out[i] = canon[int(c)%len(canon)]
			}
			return out
		}
		q := clamp(qRaw, 200)
		d := clamp(dRaw, 400)
		if len(q) == 0 {
			return
		}
		matrices := []*score.Matrix{
			score.BLOSUM62,
			score.NewMatchMismatch(seq.Protein, 4, -10),
			score.NewMatchMismatch(seq.Protein, -1, -3),
			score.NewMatchMismatch(seq.Protein, 3, 1),
		}
		s := score.Scheme{
			Matrix: matrices[int(sel)%len(matrices)],
			Gap:    score.Gap{Open: int(open % 32), Extend: 1 + int(extend%15)},
		}
		want := sw.Score(q, d, s)
		ks, ke := kernelPair(t, q, s)
		checkDifferential(t, ks, ke, d, want)
		if ks.Stats() != ke.Stats() {
			t.Fatalf("tier stats diverged: swar=%+v emulated=%+v", ks.Stats(), ke.Stats())
		}
	})
}

// --- kernel micro-benchmarks (the bench-smoke job and the 5x gate) -----

func benchTarget() (q, d []byte) {
	rng := rand.New(rand.NewSource(99))
	return randProtein(rng, 128), randProtein(rng, 400)
}

func benchScore8(b *testing.B, impl Impl) {
	q, d := benchTarget()
	k, err := NewKernelImpl(q, protScheme(), impl)
	if err != nil {
		b.Fatal(err)
	}
	cells := int64(len(q)) * int64(len(d))
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, ok := k.Score8(d); !ok {
			b.Fatal("unexpected overflow")
		}
	}
	elapsed := time.Since(start)
	if elapsed > 0 {
		b.ReportMetric(float64(cells)*float64(b.N)/elapsed.Seconds()/1e6, "MCUPS")
	}
}

func benchScore16(b *testing.B, impl Impl) {
	q, d := benchTarget()
	k, err := NewKernelImpl(q, protScheme(), impl)
	if err != nil {
		b.Fatal(err)
	}
	cells := int64(len(q)) * int64(len(d))
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, ok := k.Score16(d); !ok {
			b.Fatal("unexpected overflow")
		}
	}
	elapsed := time.Since(start)
	if elapsed > 0 {
		b.ReportMetric(float64(cells)*float64(b.N)/elapsed.Seconds()/1e6, "MCUPS")
	}
}

func BenchmarkScore8SWAR(b *testing.B)      { benchScore8(b, ImplSWAR) }
func BenchmarkScore8Emulated(b *testing.B)  { benchScore8(b, ImplEmulated) }
func BenchmarkScore16SWAR(b *testing.B)     { benchScore16(b, ImplSWAR) }
func BenchmarkScore16Emulated(b *testing.B) { benchScore16(b, ImplEmulated) }
