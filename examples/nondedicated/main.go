// Nondedicated reproduces the paper's §V-C experiment (Figs. 7-8): the
// Ensembl Dog database searched on 4 SSE cores, first dedicated, then with
// a compute-intensive local load (the paper used superpi) stealing half of
// core 0 from t=60 s. The PSS policy's speed estimates adapt, so the
// wall-clock time grows far less than the lost capacity.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	ded, err := experiments.Fig7()
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := experiments.Fig8()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dedicated:      %7.2f s\n", ded.Makespan.Seconds())
	fmt.Printf("with local load:%7.2f s  (+%.1f%%; the paper saw +12.1%%)\n\n",
		loaded.Makespan.Seconds(),
		100*(loaded.Makespan.Seconds()-ded.Makespan.Seconds())/ded.Makespan.Seconds())

	fmt.Println("core 0 GCUPS around the load injection at t=60 s:")
	s0 := loaded.Series[0]
	for _, p := range s0.Points {
		t := p.T.Seconds()
		if t < 40 || t > 90 {
			continue
		}
		bar := ""
		for i := 0; i < int(p.GCUPS*12); i++ {
			bar += "#"
		}
		fmt.Printf("  t=%3.0fs %5.2f %s\n", t, p.GCUPS, bar)
	}
	fmt.Println("\nper-core mean GCUPS under load:")
	for _, s := range loaded.Series {
		fmt.Printf("  %s: %.2f\n", s.Name, s.Mean())
	}
}
