package jobs

import (
	"container/list"
	"sync"
)

// lru is a byte-budgeted LRU cache of encoded job results, keyed by the
// job's content digest. It is safe for concurrent use on its own lock so
// result reads (GET /jobs/{id}/result) never contend with the Manager's
// scheduling mutex.
type lru struct {
	maxBytes int64

	mu    sync.Mutex
	order *list.List // front = most recently used; values are *lruEntry
	byKey map[string]*list.Element
	bytes int64
}

type lruEntry struct {
	key  string
	body []byte
}

func newLRU(maxBytes int64) *lru {
	return &lru{maxBytes: maxBytes, order: list.New(), byKey: map[string]*list.Element{}}
}

// get returns the cached body for key (and refreshes its recency).
func (c *lru) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// put inserts (or refreshes) key and returns how many entries were evicted
// to respect the byte budget. Bodies larger than the whole budget are not
// cached at all (they would evict everything for a single entry).
func (c *lru) put(key string, body []byte) (evicted int) {
	if c.maxBytes <= 0 || int64(len(body)) > c.maxBytes {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*lruEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		c.order.MoveToFront(el)
	} else {
		c.byKey[key] = c.order.PushFront(&lruEntry{key: key, body: body})
		c.bytes += int64(len(body))
	}
	for c.bytes > c.maxBytes {
		last := c.order.Back()
		if last == nil {
			break
		}
		e := last.Value.(*lruEntry)
		c.order.Remove(last)
		delete(c.byKey, e.key)
		c.bytes -= int64(len(e.body))
		evicted++
	}
	return evicted
}

// size returns the cached byte total.
func (c *lru) size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// entries returns the number of cached results.
func (c *lru) entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}
