package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	hybridsw "repro"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/jobs"
)

// clusterServer builds a server routed onto a sharded fleet over the given
// database, returning the fleet for fault injection.
func clusterServer(t *testing.T, db []*hybridsw.Sequence, shards, replicas int) (*Server, *httptest.Server, *cluster.Fleet) {
	t.Helper()
	fleet, err := cluster.New(cluster.Config{DB: db, Shards: shards, Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions("test-db", db, hybridsw.Platform{SSECores: 1}, Options{Fleet: fleet})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s, ts, fleet
}

// TestReadyz covers the readiness probe on both backends: backend kind and
// shard health in the payload, 503 while draining, and 503 the moment any
// shard loses its last replica.
func TestReadyz(t *testing.T) {
	// Local backend: ready, no shards, drain flips it to 503.
	srv, ts := testServerOpts(t, Options{})
	resp, body := do(t, "GET", ts.URL+"/readyz", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("local readyz: %d %s", resp.StatusCode, body)
	}
	var rr ReadyResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Ready || rr.Backend != jobs.BackendLocal || len(rr.Shards) != 0 {
		t.Fatalf("local readyz payload = %+v", rr)
	}
	srv.SetDraining(true)
	if resp, _ = do(t, "GET", ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: %d, want 503", resp.StatusCode)
	}
	srv.SetDraining(false)

	// Cluster backend: per-shard health, 503 once a shard has no replica.
	p := dataset.Profile{Name: "t", NumSeqs: 20, MeanLen: 70, SigmaLn: 0.5, MinLen: 20, MaxLen: 200}
	db := dataset.Generate(p, 42)
	_, cts, fleet := clusterServer(t, db, 2, 1)
	resp, body = do(t, "GET", cts.URL+"/readyz", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("cluster readyz: %d %s", resp.StatusCode, body)
	}
	rr = ReadyResponse{}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Ready || rr.Backend != jobs.BackendCluster || len(rr.Shards) != 2 {
		t.Fatalf("cluster readyz payload = %+v", rr)
	}
	for i, sh := range rr.Shards {
		if sh.Shard != i || sh.Live != 1 || sh.Replicas != 1 || sh.Sequences == 0 {
			t.Errorf("shard health %d = %+v", i, sh)
		}
	}
	if err := fleet.KillReplica(1, 0); err != nil {
		t.Fatal(err)
	}
	resp, body = do(t, "GET", cts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead shard: %d %s, want 503", resp.StatusCode, body)
	}
	rr = ReadyResponse{}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Ready || rr.Draining || rr.Shards[1].Live != 0 {
		t.Fatalf("dead-shard readyz payload = %+v", rr)
	}
}

// TestClusterBackendServing is the end-to-end acceptance check: the same
// POST /search against a local server and a cluster server produces
// identical results, POST /jobs stamps the backend and exposes per-shard
// progress, and a replica killed while the job is in flight does not change
// the outcome.
func TestClusterBackendServing(t *testing.T) {
	p := dataset.Profile{Name: "t", NumSeqs: 60, MeanLen: 120, SigmaLn: 0.5, MinLen: 40, MaxLen: 400}
	db := dataset.Generate(p, 9)
	var fa strings.Builder
	for _, q := range []int{3, 17, 31, 44} {
		fmt.Fprintf(&fa, ">q%d\n%s\n", q, db[q].Residues)
	}
	payload := SearchRequest{QueriesFasta: fa.String(), TopK: 5, Align: true}

	_, localTS := func() (*Server, *httptest.Server) {
		s, err := NewWithOptions("test-db", db, hybridsw.Platform{SSECores: 1}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = s.Close(ctx)
		})
		return s, ts
	}()
	_, clusterTS, fleet := clusterServer(t, db, 3, 2)

	resp, localBody := do(t, "POST", localTS.URL+"/search", payload)
	if resp.StatusCode != 200 {
		t.Fatalf("local search: %d %s", resp.StatusCode, localBody)
	}
	var localOut SearchResponse
	if err := json.Unmarshal(localBody, &localOut); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []string{"full", "filtered"} {
		mp := payload
		mp.Mode = mode
		mp.Align = mode == "full"
		lresp, lbody := do(t, "POST", localTS.URL+"/search", mp)
		cresp, cbody := do(t, "POST", clusterTS.URL+"/search", mp)
		if lresp.StatusCode != 200 || cresp.StatusCode != 200 {
			t.Fatalf("mode %s: local %d cluster %d", mode, lresp.StatusCode, cresp.StatusCode)
		}
		var lout, cout SearchResponse
		if err := json.Unmarshal(lbody, &lout); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(cbody, &cout); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lout.Results, cout.Results) {
			t.Errorf("mode %s: cluster results diverge from local\n got %+v\nwant %+v", mode, cout.Results, lout.Results)
		}
	}

	// Async leg with a mid-flight crash: submit, kill a replica as soon as a
	// shard reports progress (or right away if the scan outruns the poll),
	// and the job must still complete with the local backend's results.
	resp, body := do(t, "POST", clusterTS.URL+"/jobs", payload)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cluster submit: %d %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Backend != jobs.BackendCluster {
		t.Fatalf("job backend = %q, want cluster", v.Backend)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		_, jb := do(t, "GET", clusterTS.URL+"/jobs/"+v.ID, nil)
		var jv JobView
		if err := json.Unmarshal(jb, &jv); err != nil {
			t.Fatal(err)
		}
		if jv.State.Terminal() {
			break
		}
		progressed := false
		for _, sh := range jv.Shards {
			if sh.Cells > 0 {
				progressed = true
			}
		}
		if progressed {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := fleet.KillReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	done := pollJob(t, clusterTS.URL, v.ID, jobs.StateDone)
	if done.Backend != jobs.BackendCluster {
		t.Errorf("done backend = %q", done.Backend)
	}
	if len(done.Shards) != 3 {
		t.Errorf("done view carries %d shard entries, want 3 (%+v)", len(done.Shards), done.Shards)
	}
	for _, sh := range done.Shards {
		if sh.State != "done" {
			t.Errorf("shard %d finished in state %q (%+v)", sh.Shard, sh.State, sh)
		}
	}
	resp, body = do(t, "GET", clusterTS.URL+"/jobs/"+v.ID+"/result", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("cluster result: %d %s", resp.StatusCode, body)
	}
	var clusterOut SearchResponse
	if err := json.Unmarshal(body, &clusterOut); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clusterOut.Results, localOut.Results) {
		t.Errorf("post-crash cluster results diverge from local\n got %+v\nwant %+v", clusterOut.Results, localOut.Results)
	}
	if !fleet.Ready() {
		t.Error("fleet should stay ready on the surviving replicas")
	}
}
