package analysis

import (
	"go/ast"
	"go/token"
)

// This file builds intraprocedural control-flow graphs from go/ast
// function bodies — the substrate the flow-sensitive analyzers
// (unlockpath, ctxflow, leakcheck, deadline) run their dataflow over.
//
// The graph is deliberately simple: straight-line statements accumulate
// into basic blocks, and every construct that branches — if/for/range,
// switch/type-switch, select, goto, labeled break/continue, fallthrough
// — ends the current block and wires explicit successor edges. A
// synthetic Exit block collects every return and the fall-off end of the
// body; panic calls terminate their block without reaching Exit (a
// panicking path never executes the code below it, and deferred cleanup
// is modeled separately). Deferred calls are recorded on the CFG rather
// than threaded through edges: defers run on every exit path, so
// analyzers apply them as exit-edge effects (see CFG.Defers).
//
// Function literals are NOT inlined: a FuncLit appearing in a statement
// is just an expression of that statement's block. Analyzers that care
// about closure bodies build a separate CFG for them.

// Block is one basic block: a maximal straight-line run of statements
// and control expressions, executed in order, ending in zero or more
// successor edges.
type Block struct {
	// Index is the block's position in CFG.Blocks (construction order:
	// entry first).
	Index int
	// Nodes holds the block's statements and control expressions in
	// execution order. Condition expressions of if/for and the tag of a
	// switch appear in the block that evaluates them; a select statement
	// appears in the block that enters it (its comm operations live in
	// the per-clause successor blocks).
	Nodes []ast.Node
	// Succs are the possible next blocks.
	Succs []*Block
	// Preds is the reverse of Succs, filled once construction finishes.
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	// Entry is the block execution starts in.
	Entry *Block
	// Exit is a synthetic empty block every return statement and the
	// fall-off end of the body flow into. Code that cannot reach Exit
	// cannot terminate the function (other than by panicking).
	Exit *Block
	// Defers lists the function's deferred calls in source order. Defers
	// are approximated flow-insensitively: a recorded defer is assumed to
	// run on every exit path, which matches the dominant `defer
	// mu.Unlock()` idiom this repo uses.
	Defers []*ast.CallExpr
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = &Block{} // appended last, below
	b.cur = b.cfg.Entry
	b.stmt(body)
	b.edge(b.cur, b.cfg.Exit)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.cfg
}

// ReachableFromEntry returns the set of blocks reachable from Entry.
func (g *CFG) ReachableFromEntry() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// CanReachExit returns the set of blocks from which Exit is reachable
// (computed over predecessor edges from Exit).
func (g *CFG) CanReachExit() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, p := range b.Preds {
			walk(p)
		}
	}
	walk(g.Exit)
	return seen
}

// FirstPos returns the position of the block's first positioned node, or
// token.NoPos for an empty block.
func (b *Block) FirstPos() token.Pos {
	for _, n := range b.Nodes {
		if p := n.Pos(); p.IsValid() {
			return p
		}
	}
	return token.NoPos
}

// ctrlFrame is one enclosing breakable construct (loop, switch, select)
// or labeled statement, recording where break/continue jump to.
type ctrlFrame struct {
	label      string // enclosing label, "" if none
	breakTo    *Block
	continueTo *Block // nil for switch/select/labeled blocks
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	frames []ctrlFrame
	labels map[string]*Block
	gotos  []pendingGoto
	// pendingLabel is the label of a LabeledStmt whose inner statement is
	// about to be visited; loops and switches claim it for their frame.
	pendingLabel string
	// fallthroughTo is the body block of the next case clause while
	// visiting a switch case, so `fallthrough` can be wired.
	fallthroughTo *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startDead begins a fresh block with no incoming edge — the code after
// a return/break/goto/panic. It stays unreachable unless a label or goto
// later targets it.
func (b *cfgBuilder) startDead() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the pending label for the construct being entered.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) push(f ctrlFrame) { b.frames = append(b.frames, f) }
func (b *cfgBuilder) pop()             { b.frames = b.frames[:len(b.frames)-1] }

// branchTarget resolves a break or continue (possibly labeled) against
// the frame stack.
func (b *cfgBuilder) branchTarget(tok token.Token, label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label != "" && f.label != label {
			continue
		}
		if tok == token.BREAK {
			return f.breakTo
		}
		if f.continueTo != nil {
			return f.continueTo
		}
		if label != "" {
			return nil // labeled continue on a non-loop: ill-formed
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		if b.labels == nil {
			b.labels = map[string]*Block{}
		}
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = target
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
			b.stmt(s.Stmt)
			b.pendingLabel = ""
		default:
			// Labeled plain statement or block: `break L` jumps past it.
			after := b.newBlock()
			b.push(ctrlFrame{label: s.Label.Name, breakTo: after})
			b.stmt(s.Stmt)
			b.pop()
			b.edge(b.cur, after)
			b.cur = after
		}
	case *ast.IfStmt:
		b.stmt(s.Init)
		b.add(s.Cond)
		condBlock := b.cur
		thenBlock := b.newBlock()
		b.edge(condBlock, thenBlock)
		b.cur = thenBlock
		b.stmt(s.Body)
		thenEnd := b.cur
		join := b.newBlock()
		if s.Else != nil {
			elseBlock := b.newBlock()
			b.edge(condBlock, elseBlock)
			b.cur = elseBlock
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlock, join)
		}
		b.edge(thenEnd, join)
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		header := b.newBlock()
		b.edge(b.cur, header)
		if s.Cond != nil {
			header.Nodes = append(header.Nodes, s.Cond)
		}
		body := b.newBlock()
		b.edge(header, body)
		exit := b.newBlock()
		if s.Cond != nil {
			b.edge(header, exit)
		}
		continueTo := header
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			continueTo = post
		}
		b.push(ctrlFrame{label: label, breakTo: exit, continueTo: continueTo})
		b.cur = body
		b.stmt(s.Body)
		if post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post)
		}
		b.edge(b.cur, header)
		b.pop()
		b.cur = exit
	case *ast.RangeStmt:
		label := b.takeLabel()
		header := b.newBlock()
		b.edge(b.cur, header)
		header.Nodes = append(header.Nodes, s)
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(header, body)
		b.edge(header, exit)
		b.push(ctrlFrame{label: label, breakTo: exit, continueTo: header})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, header)
		b.pop()
		b.cur = exit
	case *ast.SwitchStmt:
		b.switchLike(s, s.Init, s.Tag, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchLike(s, s.Init, nil, s.Body)
	case *ast.SelectStmt:
		label := b.takeLabel()
		b.add(s) // the select itself is the (potentially blocking) event
		header := b.cur
		exit := b.newBlock()
		b.push(ctrlFrame{label: label, breakTo: exit})
		for _, c := range s.Body.List {
			clause := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(header, blk)
			b.cur = blk
			if clause.Comm != nil {
				b.add(clause.Comm)
			}
			for _, st := range clause.Body {
				b.stmt(st)
			}
			b.edge(b.cur, exit)
		}
		b.pop()
		// select{} with no clauses blocks forever: header keeps no
		// successors and exit stays unreachable.
		b.cur = exit
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.startDead()
	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK, token.CONTINUE:
			b.add(s)
			if t := b.branchTarget(s.Tok, label); t != nil {
				b.edge(b.cur, t)
			}
			b.startDead()
		case token.GOTO:
			b.add(s)
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
			b.startDead()
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.edge(b.cur, b.fallthroughTo)
			}
			b.startDead()
		}
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s.Call)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			// Panic leaves the block with no successors: the path dies
			// here rather than flowing to Exit.
			b.startDead()
		}
	default:
		// Assignments, declarations, go statements, sends, inc/dec,
		// empty statements: straight-line nodes of the current block.
		b.add(s)
	}
}

// switchLike wires a switch or type-switch: the header evaluates the
// tag, every case body is a successor, fallthrough chains to the next
// clause, and a missing default adds a header→exit edge.
func (b *cfgBuilder) switchLike(sw ast.Stmt, init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) {
	label := b.takeLabel()
	b.stmt(init)
	if tag != nil {
		b.add(tag)
	} else if ts, ok := sw.(*ast.TypeSwitchStmt); ok {
		b.add(ts.Assign)
	}
	header := b.cur
	exit := b.newBlock()
	b.push(ctrlFrame{label: label, breakTo: exit})

	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	savedFall := b.fallthroughTo
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.edge(header, blocks[i])
		b.cur = blocks[i]
		b.fallthroughTo = nil
		if i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(b.cur, exit)
	}
	b.fallthroughTo = savedFall
	if !hasDefault {
		b.edge(header, exit)
	}
	b.pop()
	b.cur = exit
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
