package analysis

import (
	"go/ast"
	"go/types"
)

// CtxflowAnalyzer enforces context discipline: cancellation must be able
// to reach every place a function can block. Concretely:
//
//   - context.Background()/context.TODO() is forbidden where a ctx is
//     already lexically in scope (that discards the caller's
//     cancellation), and outside package main even without one — library
//     code must accept a ctx instead of minting a root;
//   - in a function with a ctx in scope, a channel send inside a loop
//     must sit in a select that also receives a shutdown signal
//     (ctx.Done() or a done-channel), otherwise a stuck receiver blocks
//     the loop past cancellation;
//   - likewise a bare blocking wait — a statement-level channel receive,
//     a sync.WaitGroup.Wait, or a select with neither default nor
//     shutdown case — is reported: the function was given a ctx
//     precisely so it can stop waiting.
//
// Scope is lexical: a closure inside a ctx-taking function inherits the
// obligation (it captured the ctx). Test files are never loaded, so
// tests are exempt by construction; intentional roots (process-lifetime
// managers, compatibility wrappers) carry reasoned //swcheck:ignore
// directives.
var CtxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "no context.Background outside main; ctx-taking code must honour ctx at every blocking point",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) {
	info := pass.Pkg.Info
	isMain := pass.Pkg.Types.Name() == "main"

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			declHasCtx := len(ctxParamObjs(info, fd.Type)) > 0

			inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
				ctxInScope := declHasCtx || funcLitHasCtx(info, stack, n)
				switch n := n.(type) {
				case *ast.CallExpr:
					fn := calleeFunc(info, n)
					if isPkgFunc(fn, "context", "Background", "TODO") {
						switch {
						case ctxInScope:
							pass.Reportf(n.Pos(), "context.%s() discards the ctx already in scope; pass ctx (or a derivation of it)", fn.Name())
						case !isMain:
							pass.Reportf(n.Pos(), "context.%s() outside func main: accept a ctx parameter and thread it through", fn.Name())
						}
					}
					if ctxInScope && isWaitGroupWait(info, n) && !gatedStmt(stack) && !inGoClosure(stack) {
						pass.Reportf(n.Pos(), "sync.WaitGroup.Wait ignores the in-scope ctx: wait in a goroutine and select on ctx.Done()")
					}
				case *ast.SendStmt:
					if ctxInScope && insideLoop(stack) && !sendIsGated(stack) {
						pass.Reportf(n.Pos(), "channel send in a loop without selecting on ctx.Done(): a stuck receiver blocks this loop past cancellation")
					}
				case *ast.ExprStmt:
					if ctxInScope && recvChanExpr(n) != nil && !isSelectComm(stack, n) && !gatedStmt(stack) && !inGoClosure(stack) {
						pass.Reportf(n.Pos(), "bare channel receive ignores the in-scope ctx: select on ctx.Done() as well")
					}
				case *ast.SelectStmt:
					if ctxInScope && !selectHasDefault(n) && !selectHasDoneCase(n) {
						pass.Reportf(n.Pos(), "select blocks without a ctx.Done() (or done-channel) case despite a ctx in scope")
					}
				}
				return true
			})
		}
	}
}

// funcLitHasCtx reports whether n or any enclosing FuncLit on the stack
// declares its own context.Context parameter.
func funcLitHasCtx(info *types.Info, stack []ast.Node, n ast.Node) bool {
	if lit, ok := n.(*ast.FuncLit); ok && len(ctxParamObjs(info, lit.Type)) > 0 {
		return true
	}
	for _, a := range stack {
		if lit, ok := a.(*ast.FuncLit); ok && len(ctxParamObjs(info, lit.Type)) > 0 {
			return true
		}
	}
	return false
}

// insideLoop reports whether the innermost function on the stack
// contains a for/range ancestor of the node — i.e. the node repeats in a
// loop of the same goroutine (a FuncLit boundary resets the search: a
// closure body runs wherever the closure is called).
func insideLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// isSelectComm reports whether stmt is the comm statement of the select
// clause directly enclosing it.
func isSelectComm(stack []ast.Node, stmt ast.Stmt) bool {
	if len(stack) == 0 {
		return false
	}
	cc, ok := stack[len(stack)-1].(*ast.CommClause)
	return ok && cc.Comm == stmt
}

// sendIsGated reports whether a send statement is a select comm whose
// select also offers an escape: a default clause or a shutdown receive.
func sendIsGated(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	cc, ok := stack[len(stack)-1].(*ast.CommClause)
	if !ok {
		return false
	}
	for i := len(stack) - 2; i >= 0; i-- {
		if sel, ok := stack[i].(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if c == cc {
					return selectHasDefault(sel) || selectHasDoneCase(sel)
				}
			}
		}
	}
	return false
}

// gatedStmt reports whether the node sits inside a select clause body —
// the select's other cases already provide the escape, so a wait inside
// a clause is the handled branch, not a bare one.
func gatedStmt(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.CommClause:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// inGoClosure reports whether the node sits directly inside a FuncLit
// spawned by a `go` statement. The join-helper idiom — `go func() {
// wg.Wait(); close(idle) }()` with the spawner selecting on idle and
// ctx.Done() — puts the blocking wait in a helper goroutine precisely
// so the ctx-taking function never blocks on it; the wait there is the
// mechanism, not a violation.
func inGoClosure(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); !ok {
			continue
		}
		if i < 2 {
			return false
		}
		if _, ok := stack[i-1].(*ast.CallExpr); !ok {
			return false
		}
		_, ok := stack[i-2].(*ast.GoStmt)
		return ok
	}
	return false
}

// selectHasDoneCase reports whether any clause of the select receives
// from a shutdown signal (ctx.Done(), x.Done(), or a done-named
// channel).
func selectHasDoneCase(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if isDoneRecv(cc.Comm) {
			return true
		}
	}
	return false
}

// isWaitGroupWait recognizes wg.Wait() on a sync.WaitGroup.
func isWaitGroupWait(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && namedFrom(tv.Type, "sync", "WaitGroup")
}
