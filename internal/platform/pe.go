// Package platform models the paper's hybrid execution platform — GPUs and
// SSE multicore slaves, their speeds, local load, and master/slave
// communication — and drives the scheduling core (internal/sched) over the
// discrete-event simulator (internal/vtime) to run the paper's experiments
// in virtual time.
//
// The same sched.Coordinator also runs on the wall clock (internal/master);
// this package is the calibrated stand-in for the 2013 testbed (4x GTX 580
// + 2x Core i7) that the repro environment does not have. Calibration
// anchors are in calibration.go and DESIGN.md §2.
package platform

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sched"
)

// LoadPhase scales a PE's capacity inside a time window — how we model the
// paper's §V-C experiment, where the superpi benchmark steals roughly half
// of core 0 from t=60 s on.
type LoadPhase struct {
	From, To time.Duration // To = 0 means "until the end"
	Capacity float64       // multiplier in (0, 1]
}

// PE models one simulated processing element.
type PE struct {
	Name string
	Kind sched.SlaveKind

	// CellsPerSec is the PE's base sustained throughput for this workload
	// (already includes kernel efficiency; see calibration.go).
	CellsPerSec float64
	// TaskOverhead is charged once per task execution — GPU searches pay
	// kernel-launch/transfer/setup costs that CPUs do not.
	TaskOverhead time.Duration
	// Jitter is the relative half-width of the per-slice speed noise that
	// models OS services (Fig. 7 shows small GCUPS wobble even on a
	// dedicated machine). 0 disables noise.
	Jitter float64
	// Load lists capacity-scaling windows (non-dedicated execution).
	Load []LoadPhase
	// Declared is the theoretical speed announced at registration, used
	// by the WFixed baseline; 0 defaults to CellsPerSec.
	Declared float64
	// JoinAt delays the PE's registration: it only enters the platform at
	// this virtual time (the paper's future-work scenario of nodes joining
	// mid-run). Zero means present from the start.
	JoinAt time.Duration
	// LeaveAt removes the PE at this virtual time: its executing tasks are
	// abandoned and requeue on the master (nodes leaving mid-run). Zero
	// means the PE never leaves.
	LeaveAt time.Duration
	// HangAt wedges the PE at this virtual time *without* telling the
	// master: it stops computing, notifying and asking for work, but no
	// SlaveDied fires — the worst case of a hung-but-connected node. Only
	// lease-based failure detection (Experiment.Lease) or the workload
	// adjustment mechanism can recover its tasks. Zero means never.
	HangAt time.Duration
}

// CapacityAt returns the capacity multiplier in effect at time t.
func (p *PE) CapacityAt(t time.Duration) float64 {
	c := 1.0
	for _, ph := range p.Load {
		if t >= ph.From && (ph.To == 0 || t < ph.To) {
			c *= ph.Capacity
		}
	}
	if c <= 0 {
		c = 1e-6 // a fully-starved PE still creeps forward
	}
	return c
}

// SpeedAt returns the effective speed at time t, with deterministic jitter
// drawn from rng. Exported so other virtual-time drivers (the cluster
// simulator in internal/sim) share the exact speed model the
// discrete-event runner uses.
func (p *PE) SpeedAt(t time.Duration, rng *rand.Rand) float64 {
	v := p.CellsPerSec * p.CapacityAt(t)
	if p.Jitter > 0 {
		v *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	return v
}

// DeclaredSpeed returns the registration speed for WFixed.
func (p *PE) DeclaredSpeed() float64 {
	if p.Declared > 0 {
		return p.Declared
	}
	return p.CellsPerSec
}

// Validate rejects unusable models.
func (p *PE) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("platform: PE without a name")
	}
	if p.CellsPerSec <= 0 {
		return fmt.Errorf("platform: PE %s: CellsPerSec = %v", p.Name, p.CellsPerSec)
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		return fmt.Errorf("platform: PE %s: jitter %v outside [0,1)", p.Name, p.Jitter)
	}
	for _, ph := range p.Load {
		if ph.Capacity <= 0 || ph.Capacity > 1 {
			return fmt.Errorf("platform: PE %s: load capacity %v outside (0,1]", p.Name, ph.Capacity)
		}
	}
	if p.LeaveAt != 0 && p.LeaveAt <= p.JoinAt {
		return fmt.Errorf("platform: PE %s: LeaveAt %v not after JoinAt %v", p.Name, p.LeaveAt, p.JoinAt)
	}
	if p.HangAt != 0 && p.HangAt <= p.JoinAt {
		return fmt.Errorf("platform: PE %s: HangAt %v not after JoinAt %v", p.Name, p.HangAt, p.JoinAt)
	}
	return nil
}
