package farrar

import "repro/internal/simd/swar"

// This file is the native-speed 8-bit tier: Farrar's striped kernel on
// 8 byte lanes packed in a uint64, computed with the loop-free saturating
// bit tricks of internal/simd/swar. The recurrences are identical to
// ScoreU8 (the emulated oracle); only the lane count and the arithmetic
// substrate differ, and since escalation depends only on DP cell values —
// not on lane geometry — the two return identical (score, ok) pairs.
//
// swcheck's purity analyzer bans importing the emulated internal/simd ISA
// from this file: the hot path must stay on the packed-word bit tricks.

// buildSwarProfile8 packs the striped biased byte profile: byte lane l of
// swarProf8[r][s] holds score(query[l*segLen+s], r) + bias.
func (k *Kernel) buildSwarProfile8() {
	m := len(k.query)
	k.swarSegLen8 = (m + swar.Lanes8 - 1) / swar.Lanes8
	alpha := k.scheme.Matrix.Alphabet()
	k.swarProf8 = make([][]uint64, alpha.Size()+1)
	for r := 0; r <= alpha.Size(); r++ {
		segs := make([]uint64, k.swarSegLen8)
		var row []int
		if r < alpha.Size() {
			row = k.scheme.Matrix.Row(r)
		}
		for s := 0; s < k.swarSegLen8; s++ {
			var v uint64
			for l := 0; l < swar.Lanes8; l++ {
				qi := l*k.swarSegLen8 + s
				if qi >= m {
					continue // padding lanes hold biased zero so phantom rows never grow
				}
				sc := k.scheme.Matrix.Min() // invalid residues score worst, like the scalar reference
				if row != nil {
					sc = row[alpha.Index(k.query[qi])]
				}
				v |= uint64(uint8(sc+k.bias)) << (8 * l)
			}
			segs[s] = v
		}
		k.swarProf8[r] = segs
	}
}

// ScoreSWAR8 runs the packed-word 8-bit saturating kernel. ok is false
// when the score may have overflowed the tier's 255-bias ceiling.
func (k *Kernel) ScoreSWAR8(target []byte) (sc int, ok bool) {
	if len(target) == 0 {
		return 0, true
	}
	if !k.tier8 {
		return 0, false
	}
	if k.swarProf8 == nil {
		k.buildSwarProfile8()
	}
	segLen := k.swarSegLen8
	alpha := k.scheme.Matrix.Alphabet()
	vBias := swar.Splat8(uint8(k.bias))
	vGapOE := swar.Splat8(uint8(k.scheme.Gap.Open + k.scheme.Gap.Extend))
	vGapE := swar.Splat8(uint8(k.scheme.Gap.Extend))
	var vMax uint64

	vHLoad := make([]uint64, segLen)
	vHStore := make([]uint64, segLen)
	vE := make([]uint64, segLen)

	for _, c := range target {
		ri := alpha.Index(c)
		if ri < 0 {
			ri = alpha.Size() // all-minimum row for out-of-alphabet residues
		}
		prof := k.swarProf8[ri][:segLen] // len hint: elides bounds checks below

		var vF uint64
		// H of query position l*segLen-1 feeds lane l segment 0: shift the
		// last stored segment up one lane (zero fill = H[0][j-1] = 0).
		vH := swar.ShiftLane8(vHLoad[segLen-1])
		for s := 0; s < segLen; s++ {
			vH = swar.SubSat8(swar.AddSat8(vH, prof[s]), vBias)
			vH = swar.Max8(vH, vE[s])
			vH = swar.Max8(vH, vF)
			vMax = swar.Max8(vMax, vH)
			vHStore[s] = vH

			vHGap := swar.SubSat8(vH, vGapOE)
			vE[s] = swar.Max8(swar.SubSat8(vE[s], vGapE), vHGap)
			vF = swar.Max8(swar.SubSat8(vF, vGapE), vHGap)
			vH = vHLoad[s]
		}

		// Lazy-F correction, packed form. The carry decays by gapE >= 1 per
		// step and the lane shift retires it after Lanes8 sweeps, so the
		// loop terminates naturally; the guard is defensive and its expiry
		// escalates to the 16-bit tier rather than returning a score whose
		// correction pass did not finish.
		vF = swar.ShiftLane8(vF)
		for s, guard := 0, segLen*(swar.Lanes8+1); swar.AnyGt8(vF, swar.SubSat8(vHStore[s], vGapOE)); guard-- {
			if guard <= 0 {
				return 0, false
			}
			nh := swar.Max8(vHStore[s], vF)
			if nh != vHStore[s] {
				vHStore[s] = nh
				vMax = swar.Max8(vMax, nh)
				// A raised H can feed a horizontal gap in the next column.
				vE[s] = swar.Max8(vE[s], swar.SubSat8(nh, vGapOE))
			}
			vF = swar.SubSat8(vF, vGapE)
			if s++; s == segLen {
				s = 0
				vF = swar.ShiftLane8(vF)
			}
		}

		vHLoad, vHStore = vHStore, vHLoad
	}
	best := int(swar.HMax8(vMax))
	if best >= k.ceiling8() {
		return 0, false // a saturating add may have clipped the true score
	}
	return best, true
}
