package seqio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/seq"
)

func TestPackedRoundTrip(t *testing.T) {
	p := dataset.Profile{Name: "t", NumSeqs: 40, MeanLen: 120, SigmaLn: 0.6, MinLen: 10, MaxLen: 600}
	in := dataset.Generate(p, 31)
	in[0].Description = "first description"
	path := filepath.Join(t.TempDir(), "db.swpkd")
	if err := WritePacked(path, seq.Protein, in); err != nil {
		t.Fatal(err)
	}
	out, info, err := ReadPacked(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Count != len(in) || info.Kind != seq.ProteinKind {
		t.Fatalf("info = %+v", info)
	}
	var residues int64
	maxLen := 0
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Description != in[i].Description {
			t.Fatalf("record %d header mismatch", i)
		}
		if !bytes.Equal(out[i].Residues, in[i].Residues) {
			t.Fatalf("record %d residues mismatch", i)
		}
		residues += int64(in[i].Len())
		if in[i].Len() > maxLen {
			maxLen = in[i].Len()
		}
	}
	if info.Residues != residues || info.MaxLen != maxLen {
		t.Fatalf("info stats = %+v, want %d/%d", info, residues, maxLen)
	}
}

func TestPackedDNA(t *testing.T) {
	in := []*seq.Sequence{seq.New("d1", "", []byte("ATGCATGC"))}
	path := filepath.Join(t.TempDir(), "dna.swpkd")
	if err := WritePacked(path, seq.DNA, in); err != nil {
		t.Fatal(err)
	}
	out, info, err := ReadPacked(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != seq.DNAKind || string(out[0].Residues) != "ATGCATGC" {
		t.Fatalf("out = %v info = %+v", out[0], info)
	}
}

func TestPackedRejectsInvalidResidues(t *testing.T) {
	in := []*seq.Sequence{seq.New("bad", "", []byte("AT1C"))}
	path := filepath.Join(t.TempDir(), "bad.swpkd")
	if err := WritePacked(path, seq.DNA, in); err == nil {
		t.Error("invalid residue accepted")
	}
}

func TestReadPackedRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"garbage":  []byte("not a packed db at all"),
		"truncmag": packedMagic[:4],
		"justmag":  packedMagic[:],
	}
	for name, data := range cases {
		path := filepath.Join(dir, name)
		os.WriteFile(path, data, 0o644)
		if _, _, err := ReadPacked(path); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Valid header claiming records that are not there.
	path := filepath.Join(dir, "short")
	var buf bytes.Buffer
	buf.Write(packedMagic[:])
	buf.WriteByte(byte(seq.ProteinKind))
	buf.Write(make([]byte, 24)) // count=0... then tamper count
	b := buf.Bytes()
	b[9] = 3 // count = 3 with no records
	os.WriteFile(path, b, 0o644)
	if _, _, err := ReadPacked(path); err == nil {
		t.Error("truncated records accepted")
	}
}

func TestPackFromFasta(t *testing.T) {
	fastaPath := writeFasta(t, ">a desc\nMKVL\n>b\nACDEFGH\n")
	packedPath := PackedPath(fastaPath)
	info, err := Pack(fastaPath, packedPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Count != 2 || info.Residues != 11 || info.MaxLen != 7 {
		t.Fatalf("info = %+v", info)
	}
	out, _, err := ReadPacked(packedPath)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].ID != "a" || out[0].Description != "desc" || string(out[1].Residues) != "ACDEFGH" {
		t.Fatalf("out = %v %v", out[0], out[1])
	}
}

func TestPackGuessesDNA(t *testing.T) {
	fastaPath := writeFasta(t, ">d\nATGCATGC\n")
	info, err := Pack(fastaPath, PackedPath(fastaPath), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != seq.DNAKind {
		t.Errorf("guessed kind = %v, want DNA", info.Kind)
	}
}

func TestPackMissingFile(t *testing.T) {
	if _, err := Pack(filepath.Join(t.TempDir(), "none.fasta"), "out", nil); err == nil {
		t.Error("missing FASTA accepted")
	}
}
