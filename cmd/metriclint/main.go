// Command metriclint enforces the repository's metric naming convention
// (subsystem_name_unit; counters end in _total, gauges must not,
// histogram names carry a unit suffix — see metrics.CheckName).
//
// It is DEPRECATED: the check lives in internal/analysis
// (MetricNameAnalyzer), where it runs type-checked alongside the rest of
// the suite, and `swcheck -only metricname` is the supported way to run
// it alone. metriclint survives as a thin alias that prints a pointer to
// its replacement on every run. Directory arguments are accepted for
// backwards compatibility with the original linter and are walked
// recursively; the default is the whole module.
//
// Usage:
//
//	metriclint [dir ...]   # default: the enclosing module
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so the deprecation behaviour is
// testable. It returns the intended exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fmt.Fprintln(stderr, "metriclint: deprecated — use `go run ./cmd/swcheck -only metricname` instead")

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "metriclint: %v\n", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "metriclint: %v\n", err)
		return 2
	}
	patterns := []string{"./..."}
	if len(args) > 0 {
		patterns = nil
		for _, dir := range args {
			patterns = append(patterns, dir+"/...")
		}
	}
	n, err := analysis.Run(root, patterns, []*analysis.Analyzer{analysis.MetricNameAnalyzer}, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "metriclint: %v\n", err)
		return 1
	}
	if n > 0 {
		fmt.Fprintf(stderr, "metriclint: %d bad metric name(s)\n", n)
		return 1
	}
	return 0
}
