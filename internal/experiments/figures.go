package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/gcups"
	"repro/internal/platform"
	"repro/internal/sched"
)

// Fig5Result is the §IV-A.3 walkthrough: 20 unit tasks, one GPU six times
// faster than three SSE cores, with and without the adjustment mechanism.
type Fig5Result struct {
	With, Without *platform.Result
}

// Fig5 runs the walkthrough. The paper's exact numbers are 14 s with the
// mechanism and 18 s without.
func Fig5() (*Fig5Result, error) {
	mk := func(adjust bool) platform.Experiment {
		tasks := make([]sched.Task, 20)
		for i := range tasks {
			tasks[i] = sched.Task{QueryID: fmt.Sprintf("t%d", i+1), Cells: 6}
		}
		pes := []*platform.PE{{Name: "GPU1", Kind: sched.KindGPU, CellsPerSec: 6}}
		for i := 1; i <= 3; i++ {
			pes = append(pes, &platform.PE{Name: fmt.Sprintf("SSE%d", i), Kind: sched.KindCPU, CellsPerSec: 1})
		}
		return platform.Experiment{
			Tasks:       tasks,
			PEs:         pes,
			Policy:      &sched.PSS{},
			Adjust:      adjust,
			NotifyEvery: 500 * time.Millisecond,
		}
	}
	with, err := platform.Run(mk(true))
	if err != nil {
		return nil, err
	}
	without, err := platform.Run(mk(false))
	if err != nil {
		return nil, err
	}
	return &Fig5Result{With: with, Without: without}, nil
}

// Gantt renders an assignment log as a small text Gantt chart, one line per
// PE, for the Fig. 5 report.
func Gantt(res *platform.Result) string {
	var b strings.Builder
	for i, pe := range res.PerPE {
		fmt.Fprintf(&b, "%-5s:", pe.Name)
		for _, a := range res.Assignments {
			if int(a.Slave) != i {
				continue
			}
			mark := ""
			if a.Replica {
				mark = "*"
			}
			ids := make([]string, len(a.Tasks))
			for k, id := range a.Tasks {
				ids[k] = fmt.Sprintf("t%d%s", int(id)+1, mark)
			}
			fmt.Fprintf(&b, " [%s @%s]", strings.Join(ids, ","), gcups.Seconds(a.Time))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "total execution time: %s s\n", gcups.Seconds(res.Makespan))
	return b.String()
}

// Fig6Row is one bar pair of Fig. 6: a configuration's GCUPS with and
// without the workload adjustment mechanism on SwissProt.
type Fig6Row struct {
	Config            string
	Without, With     float64 // GCUPS
	WithoutT, WithT   time.Duration
	GainPercent       float64 // (With-Without)/Without * 100
	TimeReducePercent float64 // (WithoutT-WithT)/WithoutT * 100
}

// Fig6 reproduces "GCUPS for comparing the databases with and without the
// workload adjustment mechanism" (UniProtKB/SwissProt, six configurations).
func Fig6() ([]Fig6Row, *gcups.Table, error) {
	db, err := dataset.ProfileByName("UniProtKB/SwissProt")
	if err != nil {
		return nil, nil, err
	}
	configs := []struct {
		Name       string
		GPUs, SSEs int
	}{
		{"1 GPU", 1, 0},
		{"1 GPU + 4 SSE", 1, 4},
		{"2 GPU", 2, 0},
		{"2 GPU + 4 SSE", 2, 4},
		{"4 GPU", 4, 0},
		{"4 GPU + 4 SSE", 4, 4},
	}
	var rows []Fig6Row
	t := &gcups.Table{
		Title:  "Fig. 6: workload adjustment impact on SwissProt",
		Header: []string{"Configuration", "GCUPS w/o", "GCUPS w/", "gain %", "time w/o (s)", "time w/ (s)", "reduction %"},
	}
	for i, c := range configs {
		pes := platform.Hybrid(c.GPUs, c.SSEs)
		without, err := runConfig(db, pes, false, nil, baseSeed+int64(i))
		if err != nil {
			return nil, nil, err
		}
		with, err := runConfig(db, platform.Hybrid(c.GPUs, c.SSEs), true, nil, baseSeed+int64(i))
		if err != nil {
			return nil, nil, err
		}
		row := Fig6Row{
			Config:   c.Name,
			Without:  without.GCUPS(),
			With:     with.GCUPS(),
			WithoutT: without.Makespan,
			WithT:    with.Makespan,
		}
		if row.Without > 0 {
			row.GainPercent = (row.With - row.Without) / row.Without * 100
		}
		if row.WithoutT > 0 {
			row.TimeReducePercent = float64(row.WithoutT-row.WithT) / float64(row.WithoutT) * 100
		}
		rows = append(rows, row)
		t.AddRow(c.Name, row.Without, row.With,
			fmt.Sprintf("%.1f", row.GainPercent),
			row.WithoutT, row.WithT,
			fmt.Sprintf("%.1f", row.TimeReducePercent))
	}
	return rows, t, nil
}

// FigTimeline is the outcome of the Fig. 7 / Fig. 8 experiments: per-core
// GCUPS series over the run.
type FigTimeline struct {
	Makespan time.Duration
	Series   []gcups.Series
}

// fig7Experiment compares 40 queries against Ensembl Dog on 4 dedicated SSE
// cores; loaded adds the §V-C local load: a compute-intensive benchmark
// (superpi in the paper) steals ~55% of core 0 from t=60 s on.
func figTimeline(loaded bool) (*FigTimeline, error) {
	db, err := dataset.ProfileByName("Ensembl Dog Proteins")
	if err != nil {
		return nil, err
	}
	pes := platform.Hybrid(0, 4)
	if loaded {
		pes[0].Load = []platform.LoadPhase{{From: 60 * time.Second, Capacity: 0.45}}
	}
	res, err := platform.Run(platform.Experiment{
		Tasks:       Tasks(db),
		PEs:         pes,
		Policy:      &sched.PSS{},
		Adjust:      true,
		Omega:       Omega,
		CommLatency: CommLatency,
		NotifyEvery: NotifyEvery,
		Seed:        baseSeed + 7,
	})
	if err != nil {
		return nil, err
	}
	out := &FigTimeline{Makespan: res.Makespan}
	for _, pe := range res.PerPE {
		times := make([]time.Duration, len(pe.Timeline))
		rates := make([]float64, len(pe.Timeline))
		for i, s := range pe.Timeline {
			times[i], rates[i] = s.T, s.Rate
		}
		out.Series = append(out.Series, gcups.Bucketize(pe.Name, times, rates, 2*time.Second, res.Makespan))
	}
	return out, nil
}

// Fig7 is the dedicated 4-core execution.
func Fig7() (*FigTimeline, error) { return figTimeline(false) }

// Fig8 is the non-dedicated execution with local load at core 0.
func Fig8() (*FigTimeline, error) { return figTimeline(true) }

// PolicyAblation compares SS, PSS, Fixed and WFixed on the heterogeneous
// 4 GPU + 4 SSE platform over SwissProt — the design space of the paper's
// Table I (related-work allocation policies), measured under one roof.
func PolicyAblation(adjust bool) (*gcups.Table, error) {
	db, err := dataset.ProfileByName("UniProtKB/SwissProt")
	if err != nil {
		return nil, err
	}
	t := &gcups.Table{
		Title:  fmt.Sprintf("Policy ablation on 4 GPU + 4 SSE, SwissProt (adjustment=%v)", adjust),
		Header: []string{"Policy", "Time (s)", "GCUPS", "Interactions"},
	}
	for _, name := range []string{"SS", "PSS", "Fixed", "WFixed"} {
		pol, err := sched.NewPolicy(name)
		if err != nil {
			return nil, err
		}
		res, err := runConfig(db, platform.Hybrid(4, 4), adjust, pol, baseSeed)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, res.Makespan, res.GCUPS(), len(res.Assignments))
	}
	return t, nil
}

// OmegaAblation sweeps the PSS notification window Ω under the Fig. 8 local
// load, showing the adaptation-speed/stability trade-off the paper
// describes for small vs large Ω.
func OmegaAblation() (*gcups.Table, error) {
	db, err := dataset.ProfileByName("Ensembl Dog Proteins")
	if err != nil {
		return nil, err
	}
	t := &gcups.Table{
		Title:  "PSS Ω-window ablation (4 SSE cores, load on core 0 at 60 s)",
		Header: []string{"Omega", "Time (s)", "GCUPS"},
	}
	for _, omega := range []int{1, 2, 4, 8, 16, 32} {
		pes := platform.Hybrid(0, 4)
		pes[0].Load = []platform.LoadPhase{{From: 60 * time.Second, Capacity: 0.45}}
		res, err := platform.Run(platform.Experiment{
			Tasks:       Tasks(db),
			PEs:         pes,
			Policy:      &sched.PSS{},
			Adjust:      true,
			Omega:       omega,
			CommLatency: CommLatency,
			NotifyEvery: NotifyEvery,
			Seed:        baseSeed,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(omega, res.Makespan, res.GCUPS())
	}
	return t, nil
}

// LatencyAblation sweeps master<->slave latency for SS vs PSS on the Dog
// database (many small tasks): SS pays one round trip per task, PSS
// amortizes them, so SS degrades faster.
func LatencyAblation() (*gcups.Table, error) {
	db, err := dataset.ProfileByName("Ensembl Dog Proteins")
	if err != nil {
		return nil, err
	}
	t := &gcups.Table{
		Title:  "Communication latency ablation (4 GPU + 4 SSE, Ensembl Dog)",
		Header: []string{"One-way latency", "SS time (s)", "PSS time (s)"},
	}
	for _, lat := range []time.Duration{0, time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond} {
		times := map[string]time.Duration{}
		for _, name := range []string{"SS", "PSS"} {
			pol, _ := sched.NewPolicy(name)
			res, err := platform.Run(platform.Experiment{
				Tasks:       Tasks(db),
				PEs:         platform.Hybrid(4, 4),
				Policy:      pol,
				Adjust:      true,
				Omega:       Omega,
				CommLatency: lat,
				NotifyEvery: NotifyEvery,
				Seed:        baseSeed,
			})
			if err != nil {
				return nil, err
			}
			times[name] = res.Makespan
		}
		t.AddRow(lat.String(), times["SS"], times["PSS"])
	}
	return t, nil
}

// ThresholdAblation sweeps the adjustment mechanism's replication gain
// threshold on the heterogeneous headline platform: too eager (0) wastes
// replica work on marginal gains, too conservative (1+) rescues slow tasks
// late. This is the design choice DESIGN.md calls out in the replica
// selector.
func ThresholdAblation() (*gcups.Table, error) {
	db, err := dataset.ProfileByName("UniProtKB/SwissProt")
	if err != nil {
		return nil, err
	}
	t := &gcups.Table{
		Title:  "Replication gain-threshold ablation (4 GPU + 4 SSE, SwissProt)",
		Header: []string{"Threshold", "Time (s)", "GCUPS", "Replicas", "Wasted Gcells"},
	}
	for _, th := range []float64{-1, 0.05, 0.1, 0.25, 0.5, 1.0, 4.0} {
		res, err := platform.Run(platform.Experiment{
			Tasks:         Tasks(db),
			PEs:           platform.Hybrid(4, 4),
			Policy:        &sched.PSS{},
			Adjust:        true,
			Omega:         Omega,
			GainThreshold: th,
			CommLatency:   CommLatency,
			NotifyEvery:   NotifyEvery,
			Seed:          baseSeed,
		})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%.2f", th)
		if th < 0 {
			label = "any gain"
		}
		t.AddRow(label, res.Makespan, res.GCUPS(), res.Replicas,
			fmt.Sprintf("%.1f", float64(res.WastedCells)/1e9))
	}
	return t, nil
}

// BurstAblation sweeps the PSS MaxBurst cap on the headline platform,
// showing the trade-off between master interactions and allocation balance.
func BurstAblation() (*gcups.Table, error) {
	db, err := dataset.ProfileByName("UniProtKB/SwissProt")
	if err != nil {
		return nil, err
	}
	t := &gcups.Table{
		Title:  "PSS MaxBurst ablation (4 GPU + 4 SSE, SwissProt)",
		Header: []string{"MaxBurst", "Time (s)", "GCUPS", "Interactions"},
	}
	for _, burst := range []int{0, 1, 2, 4, 8, 16} {
		res, err := platform.Run(platform.Experiment{
			Tasks:       Tasks(db),
			PEs:         platform.Hybrid(4, 4),
			Policy:      &sched.PSS{MaxBurst: burst},
			Adjust:      true,
			Omega:       Omega,
			CommLatency: CommLatency,
			NotifyEvery: NotifyEvery,
			Seed:        baseSeed,
		})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d", burst)
		if burst == 0 {
			label = "uncapped"
		}
		t.AddRow(label, res.Makespan, res.GCUPS(), len(res.Assignments))
	}
	return t, nil
}
