package score

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/seq"
)

// Standard protein substitution matrices, parsed at init from the embedded
// NCBI-format tables below. BLOSUM62 is the default of both CUDASW++ 2.0 and
// the paper's adapted Farrar implementation.
var (
	BLOSUM62 *Matrix
	BLOSUM50 *Matrix
)

func init() {
	var err error
	if BLOSUM62, err = ParseNCBI("BLOSUM62", strings.NewReader(blosum62Text)); err != nil {
		panic(err)
	}
	if BLOSUM50, err = ParseNCBI("BLOSUM50", strings.NewReader(blosum50Text)); err != nil {
		panic(err)
	}
}

// ParseNCBI reads a substitution matrix in the NCBI flat format: '#' comment
// lines, one header line of residue letters, then one row per residue whose
// first field repeats the residue letter. The matrix is remapped onto the
// package protein alphabet; residues of the alphabet that the file does not
// define score the file minimum against everything.
func ParseNCBI(name string, r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	var cols []byte
	raw := map[[2]byte]int{}
	minVal := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if cols == nil {
			for _, f := range fields {
				if len(f) != 1 {
					return nil, fmt.Errorf("score: %s: bad header field %q", name, f)
				}
				cols = append(cols, f[0])
			}
			continue
		}
		if len(fields) != len(cols)+1 || len(fields[0]) != 1 {
			return nil, fmt.Errorf("score: %s: bad row %q", name, line)
		}
		row := fields[0][0]
		for i, f := range fields[1:] {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("score: %s: row %c: %v", name, row, err)
			}
			raw[[2]byte{row, cols[i]}] = v
			if v < minVal {
				minVal = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cols == nil {
		return nil, fmt.Errorf("score: %s: empty matrix", name)
	}

	a := seq.Protein
	n := a.Size()
	scores := make([][]int, n)
	for i := range scores {
		scores[i] = make([]int, n)
		for j := range scores[i] {
			v, ok := raw[[2]byte{a.Letter(i), a.Letter(j)}]
			if !ok {
				v = minVal
			}
			scores[i][j] = v
		}
	}
	return NewMatrix(name, a, scores)
}

// blosum62Text is the standard NCBI BLOSUM62 table.
const blosum62Text = `
#  Matrix made by matblas from blosum62.iij
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
A  4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
R -1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
N -2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
D -2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
C  0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
Q -1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
E -1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
G  0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
H -2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
I -1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
L -1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
K -1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
M -1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
F -2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
P -1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
S  1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
W -3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
Y -2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
V  0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
B -2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
Z -1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
X  0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
* -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
`

// blosum50Text is the standard NCBI BLOSUM50 table (the SSEARCH default).
const blosum50Text = `
#  Matrix made by matblas from blosum50.iij
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
A  5 -2 -1 -2 -1 -1 -1  0 -2 -1 -2 -1 -1 -3 -1  1  0 -3 -2  0 -2 -1 -1 -5
R -2  7 -1 -2 -4  1  0 -3  0 -4 -3  3 -2 -3 -3 -1 -1 -3 -1 -3 -1  0 -1 -5
N -1 -1  7  2 -2  0  0  0  1 -3 -4  0 -2 -4 -2  1  0 -4 -2 -3  4  0 -1 -5
D -2 -2  2  8 -4  0  2 -1 -1 -4 -4 -1 -4 -5 -1  0 -1 -5 -3 -4  5  1 -1 -5
C -1 -4 -2 -4 13 -3 -3 -3 -3 -2 -2 -3 -2 -2 -4 -1 -1 -5 -3 -1 -3 -3 -2 -5
Q -1  1  0  0 -3  7  2 -2  1 -3 -2  2  0 -4 -1  0 -1 -1 -1 -3  0  4 -1 -5
E -1  0  0  2 -3  2  6 -3  0 -4 -3  1 -2 -3 -1 -1 -1 -3 -2 -3  1  5 -1 -5
G  0 -3  0 -1 -3 -2 -3  8 -2 -4 -4 -2 -3 -4 -2  0 -2 -3 -3 -4 -1 -2 -2 -5
H -2  0  1 -1 -3  1  0 -2 10 -4 -3  0 -1 -1 -2 -1 -2 -3  2 -4  0  0 -1 -5
I -1 -4 -3 -4 -2 -3 -4 -4 -4  5  2 -3  2  0 -3 -3 -1 -3 -1  4 -4 -3 -1 -5
L -2 -3 -4 -4 -2 -2 -3 -4 -3  2  5 -3  3  1 -4 -3 -1 -2 -1  1 -4 -3 -1 -5
K -1  3  0 -1 -3  2  1 -2  0 -3 -3  6 -2 -4 -1  0 -1 -3 -2 -3  0  1 -1 -5
M -1 -2 -2 -4 -2  0 -2 -3 -1  2  3 -2  7  0 -3 -2 -1 -1  0  1 -3 -1 -1 -5
F -3 -3 -4 -5 -2 -4 -3 -4 -1  0  1 -4  0  8 -4 -3 -2  1  4 -1 -4 -4 -2 -5
P -1 -3 -2 -1 -4 -1 -1 -2 -2 -3 -4 -1 -3 -4 10 -1 -1 -4 -3 -3 -2 -1 -2 -5
S  1 -1  1  0 -1  0 -1  0 -1 -3 -3  0 -2 -3 -1  5  2 -4 -2 -2  0  0 -1 -5
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  2  5 -3 -2  0  0 -1  0 -5
W -3 -3 -4 -5 -5 -1 -3 -3 -3 -3 -2 -3 -1  1 -4 -4 -3 15  2 -3 -5 -2 -3 -5
Y -2 -1 -2 -3 -3 -1 -2 -3  2 -1 -1 -2  0  4 -3 -2 -2  2  8 -1 -3 -2 -1 -5
V  0 -3 -3 -4 -1 -3 -3 -4 -4  4  1 -3  1 -1 -3 -2  0 -3 -1  5 -4 -3 -1 -5
B -2 -1  4  5 -3  0  1 -1  0 -4 -4  0 -3 -4 -2  0  0 -5 -3 -4  5  2 -1 -5
Z -1  0  0  1 -3  4  5 -2  0 -3 -3  1 -1 -4 -1  0 -1 -2 -2 -3  2  5 -1 -5
X -1 -1 -1 -1 -2 -1 -1 -2 -1 -1 -1 -1 -1 -2 -2 -1  0 -3 -1 -1 -1 -1 -1 -5
* -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5  1
`
