package sim

import (
	"fmt"
	"time"

	"repro/internal/sched"
)

// ShardFailover is the cluster backend's fault story reduced to one shard:
// a primary and a replica scan the same task set, the primary crashes
// mid-scan (its connection drops, so the master hears SlaveGone and
// requeues its work), and the replica must finish every task exactly once
// — the invariant library rejects both lost and double-completed tasks.
// The lease is armed as the backstop the real fleet also carries.
func ShardFailover(seed int64) Scenario {
	return Scenario{
		Name:         "shard-failover",
		Seed:         seed,
		TaskResidues: []int{900, 700, 1100, 800},
		Policy:       "PSS",
		Adjust:       true,
		Lease:        2 * time.Second,
		Slaves: []SlaveSpec{
			{Name: "shard0-primary", Kind: sched.KindCPU, Speed: 5e8, CrashAt: time.Second},
			{Name: "shard0-replica", Kind: sched.KindCPU, Speed: 4e8},
		},
	}
}

// TenantStarvation is the flood-versus-trickle fairness story: one tenant
// dumps twenty jobs at once, another submits four spaced-out jobs, both at
// equal weight. Under FIFO the trickle tenant's first job waits behind the
// whole flood (~2.7s of queue on this fleet); under DRF fair queueing it
// is served as soon as a slave frees up. The scenario pins both contracts:
// the trickle tenant's admit→complete SLO (MaxWait, set fair-passing and
// FIFO-failing) and the envy-freeness sweep over weight-normalized served
// cells while both tenants are backlogged.
func TenantStarvation(seed int64) Scenario {
	return Scenario{
		Name:         "tenant-starvation",
		Seed:         seed,
		TaskResidues: []int{100},
		Policy:       "SS", // one task per grant: fairness at task granularity
		Slaves: []SlaveSpec{
			{Name: "cpu0", Kind: sched.KindCPU, Speed: 5e8},
			{Name: "cpu1", Kind: sched.KindCPU, Speed: 5e8},
		},
		Tenants: []TenantSpec{
			{Name: "flood", Jobs: 20, Residues: 150, Every: 20 * time.Millisecond},
			{Name: "trickle", Jobs: 4, Residues: 150,
				StartAt: 100 * time.Millisecond, Every: 400 * time.Millisecond,
				// DRF entitlement: ≤0.3s of non-preemptible task ahead plus
				// 0.3s of service, doubled for protocol slop. A FIFO
				// scheduler blows through this by seconds.
				MaxWait: 1200 * time.Millisecond},
		},
		CheckFairShare: true,
	}
}

// QuotaBurst is the admission-control story: a greedy tenant fires twelve
// jobs within 60ms against a MaxOutstanding cap of two, so everything past
// the cap is turned away at the front door (the sim analogue of HTTP 429)
// while a polite co-tenant sails through untouched. The invariant library
// checks that every *admitted* job completes and the quota book drains to
// zero — rejected arrivals must leave no residue.
func QuotaBurst(seed int64) Scenario {
	return Scenario{
		Name:         "quota-burst",
		Seed:         seed,
		TaskResidues: []int{100},
		Policy:       "SS",
		Slaves: []SlaveSpec{
			{Name: "cpu0", Kind: sched.KindCPU, Speed: 2e8},
		},
		Tenants: []TenantSpec{
			{Name: "greedy", Jobs: 12, Residues: 100,
				Every: 5 * time.Millisecond, MaxOutstanding: 2},
			{Name: "polite", Jobs: 3, Residues: 100,
				StartAt: 50 * time.Millisecond, Every: 600 * time.Millisecond},
		},
	}
}

// PreemptStorm is the preemption safety story: a slow and a fast slave, a
// long seed task ground out on the slow one, so the idle fast slave
// replicates it (workload adjustment); then a high-priority tenant arrival
// lands and the fast slave's *replicated* copy is revoked on its next
// heartbeat to serve it — while the slow slave's sole surviving copy is
// untouchable. The always-on preempt-safety invariant audits every event
// in the log for a surviving executor.
func PreemptStorm(seed int64) Scenario {
	return Scenario{
		Name:         "preempt-storm",
		Seed:         seed,
		TaskResidues: []int{1000, 1000},
		Policy:       "SS",
		Adjust:       true,
		Preempt:      true,
		Slaves: []SlaveSpec{
			{Name: "slow", Kind: sched.KindCPU, Speed: 5e7},
			{Name: "fast", Kind: sched.KindCPU, Speed: 2e8},
		},
		Tenants: []TenantSpec{
			{Name: "alice", Jobs: 2, Residues: 1000,
				StartAt: 8 * time.Second, Every: time.Second},
			{Name: "bob", Jobs: 1, Residues: 1000, Priority: 2,
				StartAt: 6 * time.Second},
		},
	}
}

// AutoscaleFlap is the elastic-pool stability story: two arrival bursts
// separated by a quiet trickle, against a single static slave and an
// autoscaler allowed up to two extra machines. The controller must grow
// under each burst, shrink back during the lulls, and never flap — the
// flip-budget invariant caps total scale actions, the clamp invariant caps
// alive machines at Max, and scale-ins requeue the retiree's work without
// losing a task.
func AutoscaleFlap(seed int64) Scenario {
	return Scenario{
		Name:         "autoscale-flap",
		Seed:         seed,
		TaskResidues: []int{100},
		Policy:       "SS",
		Slaves: []SlaveSpec{
			{Name: "base", Kind: sched.KindCPU, Speed: 2e8},
		},
		Tenants: []TenantSpec{
			{Name: "burst0", Jobs: 8, Residues: 100, Every: 10 * time.Millisecond},
			{Name: "burst1", Jobs: 12, Residues: 100,
				StartAt: 6 * time.Second, Every: 10 * time.Millisecond},
			{Name: "trickle", Jobs: 20, Residues: 100, Every: time.Second},
		},
		Autoscale: &AutoscaleSpec{
			Slave: SlaveSpec{Name: "auto", Kind: sched.KindCPU, Speed: 2e8},
			Min:   1,
			Max:   3,
		},
	}
}

// Named returns a curated scenario by name with the given seed — the chaos
// CI entry point (swsim -named). Unlike Generate's seeded soup, a named
// scenario pins its fault schedule so the regression it guards stays
// guarded.
func Named(name string, seed int64) (Scenario, error) {
	switch name {
	case "shard-failover":
		return ShardFailover(seed), nil
	case "tenant-starvation":
		return TenantStarvation(seed), nil
	case "quota-burst":
		return QuotaBurst(seed), nil
	case "preempt-storm":
		return PreemptStorm(seed), nil
	case "autoscale-flap":
		return AutoscaleFlap(seed), nil
	default:
		return Scenario{}, fmt.Errorf("sim: unknown named scenario %q", name)
	}
}
