package swipe

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/sw"
)

func randProtein(rng *rand.Rand, n int) []byte {
	const canon = "ACDEFGHIKLMNPQRSTVWY"
	out := make([]byte, n)
	for i := range out {
		out[i] = canon[rng.Intn(len(canon))]
	}
	return out
}

func mkDB(rng *rand.Rand, n, maxLen int) []*seq.Sequence {
	db := make([]*seq.Sequence, n)
	for i := range db {
		db[i] = seq.New("s", "", randProtein(rng, 1+rng.Intn(maxLen)))
	}
	return db
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, score.DefaultProtein()); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := New([]byte("AC1"), score.DefaultProtein()); err == nil {
		t.Error("bad residue accepted")
	}
	if _, err := New([]byte("ACD"), score.Scheme{}); err == nil {
		t.Error("bad scheme accepted")
	}
}

func TestSearchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 20; iter++ {
		q := randProtein(rng, 1+rng.Intn(60))
		db := mkDB(rng, 1+rng.Intn(50), 120)
		sr, err := New(q, score.DefaultProtein())
		if err != nil {
			t.Fatal(err)
		}
		got := sr.Search(db)
		for i, d := range db {
			want := sw.Score(q, d.Residues, score.DefaultProtein())
			if got[i] != want {
				t.Fatalf("iter %d seq %d (len %d): swipe=%d reference=%d", iter, i, d.Len(), got[i], want)
			}
		}
	}
}

func TestSearchLaneRefill(t *testing.T) {
	// More sequences than lanes with wildly mixed lengths exercises the
	// retire-and-refill path.
	rng := rand.New(rand.NewSource(2))
	q := randProtein(rng, 40)
	var db []*seq.Sequence
	for i := 0; i < 100; i++ {
		n := 1 + (i*37)%200 // deterministic mixed lengths
		db = append(db, seq.New("s", "", randProtein(rng, n)))
	}
	sr, _ := New(q, score.DefaultProtein())
	got := sr.Search(db)
	for i, d := range db {
		want := sw.Score(q, d.Residues, score.DefaultProtein())
		if got[i] != want {
			t.Fatalf("seq %d: swipe=%d reference=%d", i, got[i], want)
		}
	}
	if st := sr.Stats(); st.Scored8 != 100 || st.Rescored != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSearchFewerSequencesThanLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := randProtein(rng, 30)
	db := mkDB(rng, 5, 60)
	sr, _ := New(q, score.DefaultProtein())
	got := sr.Search(db)
	for i, d := range db {
		if want := sw.Score(q, d.Residues, score.DefaultProtein()); got[i] != want {
			t.Fatalf("seq %d: %d != %d", i, got[i], want)
		}
	}
}

func TestSearchEmptyDB(t *testing.T) {
	sr, _ := New([]byte("ACD"), score.DefaultProtein())
	if got := sr.Search(nil); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestSearchOverflowRescore(t *testing.T) {
	// A long self-similar target saturates the 8-bit lane and must be
	// re-scored exactly.
	rng := rand.New(rand.NewSource(4))
	q := randProtein(rng, 400)
	target := seq.New("big", "", append(append([]byte{}, q...), q...))
	db := append(mkDB(rng, 10, 50), target)
	sr, _ := New(q, score.DefaultProtein())
	got := sr.Search(db)
	want := sw.Score(q, target.Residues, score.DefaultProtein())
	if want < 255 {
		t.Fatal("setup: score too small to overflow")
	}
	if got[len(db)-1] != want {
		t.Fatalf("overflowed score = %d, want %d", got[len(db)-1], want)
	}
	if sr.Stats().Rescored == 0 {
		t.Error("expected a rescore")
	}
}

func TestSearchInvalidResidues(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := randProtein(rng, 25)
	bad := seq.New("bad", "", []byte("ACD1?JACD"))
	db := append(mkDB(rng, 3, 40), bad)
	sr, _ := New(q, score.DefaultProtein())
	got := sr.Search(db)
	want := sw.Score(q, bad.Residues, score.DefaultProtein())
	if got[len(db)-1] != want {
		t.Fatalf("invalid-residue score = %d, want %d", got[len(db)-1], want)
	}
}

func TestSearchZeroLengthSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := randProtein(rng, 20)
	db := []*seq.Sequence{
		seq.New("empty", "", nil),
		seq.New("ok", "", randProtein(rng, 30)),
	}
	sr, _ := New(q, score.DefaultProtein())
	got := sr.Search(db)
	if got[0] != 0 {
		t.Errorf("empty sequence score = %d", got[0])
	}
	if want := sw.Score(q, db[1].Residues, score.DefaultProtein()); got[1] != want {
		t.Errorf("score after empty = %d, want %d", got[1], want)
	}
}

func TestSearchGapHeavyScheme(t *testing.T) {
	s := score.Scheme{Matrix: score.BLOSUM62, Gap: score.AffineGap(1, 1)}
	rng := rand.New(rand.NewSource(7))
	q := randProtein(rng, 50)
	db := mkDB(rng, 40, 100)
	sr, err := New(q, s)
	if err != nil {
		t.Fatal(err)
	}
	got := sr.Search(db)
	for i, d := range db {
		if want := sw.Score(q, d.Residues, s); got[i] != want {
			t.Fatalf("seq %d: swipe=%d reference=%d", i, got[i], want)
		}
	}
}

func TestSearchAgainstDatasetQueries(t *testing.T) {
	// Homologous queries (stitched from database fragments) stress the
	// high-score paths more than random noise does.
	p := dataset.Profile{Name: "t", NumSeqs: 30, MeanLen: 60, SigmaLn: 0.5, MinLen: 15, MaxLen: 150}
	db := dataset.Generate(p, 8)
	qs := dataset.Queries(db, 3, 30, 60, 9)
	for _, q := range qs {
		sr, _ := New(q.Residues, score.DefaultProtein())
		got := sr.Search(db)
		for i, d := range db {
			if want := sw.Score(q.Residues, d.Residues, score.DefaultProtein()); got[i] != want {
				t.Fatalf("query %s seq %d: %d != %d", q.ID, i, got[i], want)
			}
		}
	}
}

func TestStatsColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	q := randProtein(rng, 10)
	db := mkDB(rng, 4, 30)
	sr, _ := New(q, score.DefaultProtein())
	sr.Search(db)
	if sr.Stats().ColumnsRun <= 0 {
		t.Error("no columns recorded")
	}
	// Columns must be at least the longest sequence's length.
	maxLen := 0
	for _, d := range db {
		if d.Len() > maxLen {
			maxLen = d.Len()
		}
	}
	if sr.Stats().ColumnsRun < int64(maxLen) {
		t.Errorf("columns %d < max len %d", sr.Stats().ColumnsRun, maxLen)
	}
}

func TestQueryUnchanged(t *testing.T) {
	q := []byte("ACDEFGHIK")
	orig := append([]byte{}, q...)
	sr, _ := New(q, score.DefaultProtein())
	sr.Search(mkDB(rand.New(rand.NewSource(11)), 20, 40))
	if !bytes.Equal(q, orig) {
		t.Error("Search mutated the query")
	}
}
