// Package gcups provides the paper's performance metrics — GCUPS, billions
// of DP cell updates per second — plus small helpers for building the
// throughput timelines of Figs. 7-8 and rendering aligned text tables for
// the experiment reports.
package gcups

import (
	"fmt"
	"strings"
	"time"
)

// GCUPS converts a cell count and a duration to billions of cell updates
// per second.
func GCUPS(cells int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(cells) / d.Seconds() / 1e9
}

// Seconds formats a duration as the paper's tables do: seconds with one
// decimal below 100 s, whole seconds (with thousands separator) above.
func Seconds(d time.Duration) string {
	s := d.Seconds()
	if s < 100 {
		return fmt.Sprintf("%.1f", s)
	}
	return addThousands(fmt.Sprintf("%.0f", s))
}

func addThousands(digits string) string {
	n := len(digits)
	if n <= 3 {
		return digits
	}
	var b strings.Builder
	lead := n % 3
	if lead > 0 {
		b.WriteString(digits[:lead])
		if n > lead {
			b.WriteByte(',')
		}
	}
	for i := lead; i < n; i += 3 {
		b.WriteString(digits[i : i+3])
		if i+3 < n {
			b.WriteByte(',')
		}
	}
	return b.String()
}

// Point is one (time, GCUPS) sample of a throughput series.
type Point struct {
	T     time.Duration
	GCUPS float64
}

// Series is a named throughput-over-time curve (one per core in Figs. 7-8).
type Series struct {
	Name   string
	Points []Point
}

// Bucketize converts raw (time, rate cells/s) samples into a fixed-step
// GCUPS series by averaging the rates that fall into each bucket. Empty
// buckets repeat 0 (an idle core).
func Bucketize(name string, times []time.Duration, rates []float64, step time.Duration, until time.Duration) Series {
	s := Series{Name: name}
	if step <= 0 || until <= 0 {
		return s
	}
	n := int(until/step) + 1
	sums := make([]float64, n)
	counts := make([]int, n)
	for i, t := range times {
		b := int(t / step)
		if b < 0 || b >= n {
			continue
		}
		sums[b] += rates[i]
		counts[b]++
	}
	for b := 0; b < n; b++ {
		v := 0.0
		if counts[b] > 0 {
			v = sums[b] / float64(counts[b]) / 1e9
		}
		s.Points = append(s.Points, Point{T: time.Duration(b) * step, GCUPS: v})
	}
	return s
}

// Mean returns the average GCUPS of the series' points.
func (s Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.GCUPS
	}
	return sum / float64(len(s.Points))
}

// MeanBetween averages GCUPS over points with from <= T < to.
func (s Series) MeanBetween(from, to time.Duration) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			sum += p.GCUPS
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Table renders aligned text tables for the experiment reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row; cells render with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = Seconds(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with column alignment and a title rule.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			// Left-align the first column (labels), right-align numbers.
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", width[i], c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range width {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-style CSV (quoted only when needed),
// for downstream plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRec := func(rec []string) {
		for i, c := range rec {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRec(t.Header)
	}
	for _, r := range t.Rows {
		writeRec(r)
	}
	return b.String()
}
