package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG parses src (one or more declarations, no package clause)
// and builds the CFG of the first function declaration. Parse-only: CFG
// construction is purely syntactic, so unresolved identifiers are fine.
func buildTestCFG(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatal("no function declaration in source")
	return nil
}

// blockCalling returns the first block whose nodes contain a call to the
// named function.
func blockCalling(t *testing.T, g *CFG, name string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return !found
			})
			if found {
				return b
			}
		}
	}
	t.Fatalf("no block calls %s", name)
	return nil
}

// blockIncrementing returns the block holding the `name++` statement.
func blockIncrementing(t *testing.T, g *CFG, name string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if inc, ok := n.(*ast.IncDecStmt); ok {
				if id, ok := inc.X.(*ast.Ident); ok && id.Name == name {
					return b
				}
			}
		}
	}
	t.Fatalf("no block increments %s", name)
	return nil
}

// blockBranching returns the block holding the break/continue/goto with
// the given token and label ("" for unlabeled).
func blockBranching(t *testing.T, g *CFG, tok token.Token, label string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			br, ok := n.(*ast.BranchStmt)
			if !ok || br.Tok != tok {
				continue
			}
			l := ""
			if br.Label != nil {
				l = br.Label.Name
			}
			if l == label {
				return b
			}
		}
	}
	t.Fatalf("no block holds %s %s", tok, label)
	return nil
}

func hasSucc(b, s *Block) bool {
	for _, x := range b.Succs {
		if x == s {
			return true
		}
	}
	return false
}

// TestCFGLabeledContinue: `continue outer` must jump to the OUTER loop's
// post statement, skipping the inner loop's post entirely.
func TestCFGLabeledContinue(t *testing.T) {
	g := buildTestCFG(t, `
func f() {
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				continue outer
			}
			inner()
		}
	}
}
`)
	cont := blockBranching(t, g, token.CONTINUE, "outer")
	outerPost := blockIncrementing(t, g, "i")
	innerPost := blockIncrementing(t, g, "j")
	if !hasSucc(cont, outerPost) {
		t.Errorf("continue outer does not flow to the outer post (i++)")
	}
	if hasSucc(cont, innerPost) {
		t.Errorf("continue outer must not flow to the inner post (j++)")
	}
	if len(cont.Succs) != 1 {
		t.Errorf("continue block has %d successors, want exactly 1", len(cont.Succs))
	}
	if body := blockCalling(t, g, "inner"); !g.ReachableFromEntry()[body] {
		t.Errorf("inner loop body unreachable from entry")
	}
}

// TestCFGSelectDefault: a default clause makes the select non-blocking —
// the header gets one successor per clause and every reachable block can
// still terminate; without a default the header's only ways forward are
// the comm clauses.
func TestCFGSelectDefault(t *testing.T) {
	g := buildTestCFG(t, `
func f(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
	}
	return 0
}
`)
	var header *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.SelectStmt); ok {
				header = b
			}
		}
	}
	if header == nil {
		t.Fatal("no block holds the select statement")
	}
	if len(header.Succs) != 2 {
		t.Errorf("select header has %d successors, want 2 (comm clause + default)", len(header.Succs))
	}
	canExit := g.CanReachExit()
	for b := range g.ReachableFromEntry() {
		if !canExit[b] {
			t.Errorf("block %d reachable from entry but cannot reach Exit", b.Index)
		}
	}

	g2 := buildTestCFG(t, `
func f(ch chan int) {
	select {
	case <-ch:
	case <-ch:
	}
	after()
}
`)
	var header2 *Block
	for _, b := range g2.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.SelectStmt); ok {
				header2 = b
			}
		}
	}
	if header2 == nil {
		t.Fatal("no block holds the second select statement")
	}
	if len(header2.Succs) != 2 {
		t.Errorf("no-default select header has %d successors, want 2 (one per comm clause)", len(header2.Succs))
	}
	if after := blockCalling(t, g2, "after"); hasSucc(header2, after) {
		t.Errorf("no-default select must not skip straight past its clauses")
	}
}

// TestCFGDeferredUnlockInClosure: `defer func(){ mu.Unlock() }()` must be
// recorded on CFG.Defers (defers are modeled as exit-path effects, not
// edges), with the closure body intact so unlockpath can look inside it.
func TestCFGDeferredUnlockInClosure(t *testing.T) {
	g := buildTestCFG(t, `
func f() {
	mu.Lock()
	defer func() {
		mu.Unlock()
	}()
	work()
}
`)
	if len(g.Defers) != 1 {
		t.Fatalf("CFG records %d defers, want 1", len(g.Defers))
	}
	lit, ok := g.Defers[0].Fun.(*ast.FuncLit)
	if !ok {
		t.Fatalf("deferred call is %T, want a *ast.FuncLit closure", g.Defers[0].Fun)
	}
	unlocked := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Unlock" {
			unlocked = true
		}
		return true
	})
	if !unlocked {
		t.Errorf("closure body lost its Unlock call")
	}
	// Straight-line function: everything lives in the entry block.
	if work := blockCalling(t, g, "work"); work != g.Entry {
		t.Errorf("straight-line body split across blocks: work() in block %d, entry is %d", work.Index, g.Entry.Index)
	}
}

// TestCFGGoto: a goto is wired to its label's block, and the code after
// an unconditional goto is dead.
func TestCFGGoto(t *testing.T) {
	g := buildTestCFG(t, `
func f() {
	i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
	done()
}
`)
	gt := blockBranching(t, g, token.GOTO, "loop")
	target := blockIncrementing(t, g, "i")
	if !hasSucc(gt, target) {
		t.Errorf("goto loop does not flow back to the labeled block")
	}
	reach := g.ReachableFromEntry()
	if !reach[blockCalling(t, g, "done")] {
		t.Errorf("fall-through after the if must stay reachable")
	}
}

// TestCFGInfiniteLoop: `for {}` has no exit edge, so its body is
// reachable from entry but can never reach Exit — exactly the signal
// leakcheck uses to flag unterminated goroutines.
func TestCFGInfiniteLoop(t *testing.T) {
	g := buildTestCFG(t, `
func f() {
	for {
		spin()
	}
}
`)
	body := blockCalling(t, g, "spin")
	if !g.ReachableFromEntry()[body] {
		t.Fatalf("loop body unreachable from entry")
	}
	canExit := g.CanReachExit()
	if canExit[body] {
		t.Errorf("for{} body must not reach Exit")
	}
	if canExit[g.Entry] {
		t.Errorf("entry of a function ending in for{} must not reach Exit")
	}
}
