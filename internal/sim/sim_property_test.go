package sim

import (
	"encoding/json"
	"fmt"
	"testing"
)

// propertySeeds is the fixed seed matrix `make test` and CI run on every
// build: a deterministic slice of the generator's scenario space. The
// swsim smoke (and local soaks with -scenarios) sweep far wider; this
// matrix is the fast regression tripwire. Failures print a shrunken,
// replayable scenario — paste the JSON into `swsim -scenario-json`, or
// just re-run the seed.
var propertySeeds = []int64{
	1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
	101, 164, 178, 181, 185, 188, // past regressions: torn-WAL merge, lost-Assign starvation
	500, 777, 999, 4242,
}

// TestGeneratedScenariosHoldInvariants runs the seed matrix through the
// full chaos generator and requires every invariant to hold. On failure
// the schedule is shrunk to a minimal reproducer before reporting.
func TestGeneratedScenariosHoldInvariants(t *testing.T) {
	for _, seed := range propertySeeds {
		seed := seed
		t.Run(Generate(seed).Name, func(t *testing.T) {
			sc := Generate(seed)
			rep := mustRun(t, sc)
			if len(rep.Violations) == 0 && rep.Done {
				return
			}
			min := Shrink(sc, stillFailing, 400)
			minRep, _ := Run(min)
			repro, _ := json.MarshalIndent(min, "", "  ")
			t.Fatalf("seed %d violated invariants: %v\nshrunken reproducer (%d tasks, %d slaves, violations %v):\n%s",
				seed, rep.Violations, len(min.TaskResidues), len(min.Slaves), minRep.Violations, repro)
		})
	}
}

// stillFailing is the shrinker's oracle: does this candidate scenario
// still violate any invariant?
func stillFailing(sc Scenario) bool {
	rep, err := Run(sc)
	if err != nil {
		return false
	}
	return !rep.Done || len(rep.Violations) > 0
}

// TestShrinkReducesFailingScenario pins the shrinker itself: plant an
// unrecoverable invariant breaker (every slave crashes for good, so the
// job can never finish) in a scenario padded with irrelevant chaos —
// extra slaves, link-fault rules, slow-down windows, restarts — and the
// shrinker must strip the padding while keeping the failure.
func TestShrinkReducesFailingScenario(t *testing.T) {
	sc := Generate(3)
	sc.Slaves = append(sc.Slaves, Generate(4).Slaves...)
	// The plant relies on every slave dying for good; an elastic pool would
	// boot fresh fault-free machines and rescue the job.
	sc.Autoscale = nil
	sc.Tenants = nil
	for i := range sc.Slaves {
		s := &sc.Slaves[i]
		s.Name = fmt.Sprintf("m%d", i)
		s.CrashAt = 1000000 // 1ms: dead before doing anything
		s.HangAt = 0
		s.RecoverAt = 0
	}
	if !stillFailing(sc) {
		t.Fatal("planted scenario does not fail; test setup broken")
	}
	min := Shrink(sc, stillFailing, 600)
	if !stillFailing(min) {
		t.Fatal("shrink lost the failure")
	}
	if len(min.Slaves) >= len(sc.Slaves) || len(min.TaskResidues) >= len(sc.TaskResidues) {
		t.Errorf("shrink did not reduce: %d->%d slaves, %d->%d tasks",
			len(sc.Slaves), len(min.Slaves), len(sc.TaskResidues), len(min.TaskResidues))
	}
	for i, s := range min.Slaves {
		if len(s.Rules) != 0 || len(s.Slow) != 0 || s.Jitter != 0 {
			t.Errorf("slave %d kept irrelevant chaos: %+v", i, s)
		}
		if s.CrashAt == 0 {
			t.Errorf("slave %d lost the crash that causes the failure", i)
		}
	}
	if len(min.Restarts) != 0 {
		t.Errorf("shrink kept irrelevant master restarts: %v", min.Restarts)
	}
}

// TestGenerateIsDeterministic: the generator is a pure function of the
// seed — the whole property layer depends on that for replayability.
func TestGenerateIsDeterministic(t *testing.T) {
	a, _ := json.Marshal(Generate(42))
	b, _ := json.Marshal(Generate(42))
	if string(a) != string(b) {
		t.Fatalf("Generate(42) differs across calls:\n%s\n%s", a, b)
	}
}
