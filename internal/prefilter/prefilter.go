// Package prefilter implements the first stage of the two-stage filtered
// search: an Aho-Corasick multi-pattern engine that scans database residues
// for exact k-mer seeds of the query and projects every seed hit onto a
// candidate window of the database sequence. The second stage (rescore.go)
// runs the full Smith-Waterman kernel only on those windows.
//
// This is the engine class of the Aho-Corasick/Wu-Manber hybrid pipelines
// in related work: the filter is exact and cheap (a couple of table lookups
// per residue versus a DP row per residue), so on selective queries the
// pipeline touches a small fraction of the cells a full scan would. The
// filter is a heuristic with respect to Smith-Waterman — an alignment whose
// optimal path shares no sampled k-mer with the query can be missed — but
// whenever every hit's alignment is covered by an admitted window, rescored
// rankings are identical to the full scan's.
package prefilter

import (
	"fmt"
	"sort"

	"repro/internal/sched"
	"repro/internal/seq"
)

// Defaults for Spec fields left at their zero value.
const (
	// DefaultK is the seed k-mer length. 4 residues is selective on
	// protein alphabets (20^4 distinct words) while still dense enough
	// that real alignments almost always contain an exact 4-mer.
	DefaultK = 4
	// DefaultMargin is how many residues each projected window grows on
	// both sides, absorbing gaps that shift the alignment off the seed's
	// exact diagonal.
	DefaultMargin = 32
	// DefaultMaxPatterns caps the compiled pattern count; the seed stride
	// is raised until the query's seeds fit.
	DefaultMaxPatterns = 1024
)

// Spec parameterizes the prefilter stage. The zero value selects the
// defaults above. Spec travels inside wire task payloads and job cache
// keys, so all fields are exported and gob/JSON-stable.
type Spec struct {
	K           int `json:"k,omitempty"`            // seed k-mer length; <=0 means DefaultK
	Step        int `json:"step,omitempty"`         // stride between seed offsets; <=0 means 1 (auto-raised to honor MaxPatterns)
	Margin      int `json:"margin,omitempty"`       // window margin in residues; 0 means DefaultMargin, negative means none
	MaxPatterns int `json:"max_patterns,omitempty"` // distinct k-mer cap; <=0 means DefaultMaxPatterns
}

// Normalize resolves defaulted fields. Margin keeps a signed convention so
// the zero value means "default" while an explicit no-margin run is still
// expressible with any negative value.
func (s Spec) Normalize() Spec {
	if s.K <= 0 {
		s.K = DefaultK
	}
	if s.Step <= 0 {
		s.Step = 1
	}
	switch {
	case s.Margin == 0:
		s.Margin = DefaultMargin
	case s.Margin < 0:
		s.Margin = 0
	}
	if s.MaxPatterns <= 0 {
		s.MaxPatterns = DefaultMaxPatterns
	}
	return s
}

// Stats accounts one prefilter pass, in the units the metrics bundle and
// the job-level selectivity report use.
type Stats struct {
	Patterns          int   // distinct k-mer patterns compiled
	ResiduesScanned   int64 // database residues pushed through the automaton
	SeedHits          int64 // raw automaton matches before projection and merging
	Windows           int   // merged candidate windows emitted
	CandidateResidues int64 // residues covered by the emitted windows
	TotalResidues     int64 // database residues (selectivity denominator)
}

// Selectivity is the fraction of database residues the rescore stage must
// touch: CandidateResidues / TotalResidues, in [0, 1]. An empty database
// reports 0 (nothing to rescore).
func (s Stats) Selectivity() float64 {
	if s.TotalResidues == 0 {
		return 0
	}
	return float64(s.CandidateResidues) / float64(s.TotalResidues)
}

// Result is the outcome of one prefilter pass: the merged candidate
// windows (grouped by database sequence, ascending start within each) plus
// the accounting.
type Result struct {
	Windows []sched.Window
	Stats   Stats
}

// Run scans the database for the query's k-mer seeds and returns the
// candidate windows a rescore stage should align. A query shorter than the
// configured k is seeded with a single query-length pattern; an empty query
// emits no windows.
func Run(query []byte, db []*seq.Sequence, spec Spec) (Result, error) {
	spec = spec.Normalize()
	if spec.K > len(query) {
		spec.K = len(query)
	}
	var res Result
	for _, d := range db {
		res.Stats.TotalResidues += int64(d.Len())
	}
	if spec.K == 0 {
		return res, nil
	}
	pats, offs := compileSeeds(query, spec)
	res.Stats.Patterns = len(pats)
	a, err := Compile(pats)
	if err != nil {
		return Result{}, err
	}
	for si, d := range db {
		data := d.Residues
		res.Stats.ResiduesScanned += int64(len(data))
		var wins []sched.Window
		a.Scan(data, func(end, pat int) {
			res.Stats.SeedHits++
			matchStart := end - int(a.plen[pat])
			for _, qoff := range offs[pat] {
				// Diagonal projection: if the seed sits at query offset
				// qoff, a gapless alignment of the whole query starts at
				// matchStart-qoff; the margin absorbs gap-induced drift.
				start := matchStart - int(qoff) - spec.Margin
				stop := matchStart - int(qoff) + len(query) + spec.Margin
				if start < 0 {
					start = 0
				}
				if stop > len(data) {
					stop = len(data)
				}
				if start >= stop {
					continue
				}
				wins = append(wins, sched.Window{Seq: si, Start: start, End: stop})
			}
		})
		merged := mergeWindows(wins)
		for _, w := range merged {
			res.Stats.CandidateResidues += int64(w.End - w.Start)
		}
		res.Windows = append(res.Windows, merged...)
	}
	res.Stats.Windows = len(res.Windows)
	return res, nil
}

// compileSeeds extracts the query's k-mer seed patterns. The stride starts
// at spec.Step and is raised until the seed count fits MaxPatterns;
// duplicate k-mers collapse into one pattern carrying every query offset.
func compileSeeds(query []byte, spec Spec) (pats [][]byte, offs [][]int32) {
	nseeds := func(step int) int { return (len(query)-spec.K)/step + 1 }
	step := spec.Step
	for nseeds(step) > spec.MaxPatterns {
		step++
	}
	idx := make(map[string]int)
	for off := 0; off+spec.K <= len(query); off += step {
		kmer := query[off : off+spec.K]
		i, ok := idx[string(kmer)]
		if !ok {
			i = len(pats)
			idx[string(kmer)] = i
			pats = append(pats, append([]byte(nil), kmer...))
			offs = append(offs, nil)
		}
		offs[i] = append(offs[i], int32(off))
	}
	return pats, offs
}

// mergeWindows sorts same-sequence windows by start and merges overlapping
// or adjacent ones, so the rescore stage never aligns a residue twice.
func mergeWindows(wins []sched.Window) []sched.Window {
	if len(wins) <= 1 {
		return wins
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i].Start < wins[j].Start })
	out := wins[:1]
	for _, w := range wins[1:] {
		last := &out[len(out)-1]
		if w.Start <= last.End {
			if w.End > last.End {
				last.End = w.End
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

// ValidateWindows checks that windows reference database sequences and
// ranges that exist — the trust boundary when windows arrive over the wire.
func ValidateWindows(windows []sched.Window, db []*seq.Sequence) error {
	for i, w := range windows {
		if w.Seq < 0 || w.Seq >= len(db) {
			return fmt.Errorf("prefilter: window %d references sequence %d of %d", i, w.Seq, len(db))
		}
		if w.Start < 0 || w.End > db[w.Seq].Len() || w.Start >= w.End {
			return fmt.Errorf("prefilter: window %d range [%d,%d) invalid for sequence of length %d", i, w.Start, w.End, db[w.Seq].Len())
		}
	}
	return nil
}
