package slave

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/wire"
)

// scriptedMaster is a minimal in-process master for driving the slave loop
// through specific protocol paths.
type scriptedMaster struct {
	mu         sync.Mutex
	tasks      []wire.TaskSpec
	next       int
	standbys   int // respond Standby this many times before assigning
	cancelOn   map[sched.TaskID]bool
	completed  []sched.TaskID
	progresses int
	doneAfter  int // report Done once this many completions arrived
}

func (f *scriptedMaster) Call(req wire.Envelope) (wire.Envelope, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case req.Register != nil:
		return wire.Envelope{RegisterAck: &wire.RegisterAckMsg{Slave: 0}}, nil
	case req.Request != nil:
		if len(f.completed) >= f.doneAfter {
			return wire.Envelope{Assign: &wire.AssignMsg{Done: true}}, nil
		}
		if f.standbys > 0 {
			f.standbys--
			return wire.Envelope{Assign: &wire.AssignMsg{Standby: true}}, nil
		}
		if f.next < len(f.tasks) {
			t := f.tasks[f.next]
			f.next++
			return wire.Envelope{Assign: &wire.AssignMsg{Tasks: []wire.TaskSpec{t}}}, nil
		}
		return wire.Envelope{Assign: &wire.AssignMsg{Done: true}}, nil
	case req.Progress != nil:
		f.progresses++
		var cancel []sched.TaskID
		for id := range f.cancelOn {
			cancel = append(cancel, id)
		}
		return wire.Envelope{ProgressAck: &wire.ProgressAckMsg{Cancel: cancel}}, nil
	case req.Complete != nil:
		f.completed = append(f.completed, req.Complete.Task)
		return wire.Envelope{CompleteAck: &wire.CompleteAckMsg{
			Accepted: true,
			Done:     len(f.completed) >= f.doneAfter,
		}}, nil
	}
	return wire.Envelope{Error: "unexpected"}, nil
}

func (f *scriptedMaster) Close() error { return nil }

func testEngine(t *testing.T) (*FarrarEngine, []wire.TaskSpec) {
	t.Helper()
	db := tinyDB(t)
	eng, err := NewFarrarEngine("s", score.DefaultProtein(), db, 0)
	if err != nil {
		t.Fatal(err)
	}
	qs := dataset.Queries(db, 3, 40, 80, 77)
	specs := make([]wire.TaskSpec, len(qs))
	for i, q := range qs {
		specs[i] = wire.TaskSpec{
			ID: sched.TaskID(i), QueryID: q.ID, Residues: q.Residues,
			Cells: int64(q.Len()) * eng.DatabaseResidues(),
		}
	}
	return eng, specs
}

func TestRunCompletesAllTasks(t *testing.T) {
	eng, specs := testEngine(t)
	m := &scriptedMaster{tasks: specs, doneAfter: len(specs)}
	n, err := Run(m, eng, Options{NotifyEvery: time.Microsecond, Poll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(specs) || len(m.completed) != len(specs) {
		t.Fatalf("completed %d/%d", n, len(m.completed))
	}
}

func TestRunHandlesStandby(t *testing.T) {
	eng, specs := testEngine(t)
	m := &scriptedMaster{tasks: specs[:1], standbys: 3, doneAfter: 1}
	n, err := Run(m, eng, Options{Poll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("completed %d", n)
	}
}

func TestRunSkipsPreCanceledTask(t *testing.T) {
	eng, specs := testEngine(t)
	// The master cancels task 0 via a progress ack during task... simpler:
	// the cancel set already contains task 1 when the batch arrives.
	m := &scriptedBatchMaster{batch: specs, cancelID: 1}
	n, err := Run(m, eng, Options{NotifyEvery: time.Microsecond, Poll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Task 1 was canceled while task 0 executed; only 0 and 2 complete.
	if n != 2 {
		t.Fatalf("completed %d, want 2", n)
	}
	for _, id := range m.completed {
		if id == 1 {
			t.Fatal("canceled task was executed")
		}
	}
}

// scriptedBatchMaster hands the whole batch at once and cancels cancelID on
// the first progress notification (once — the real coordinator drains its
// cancellation list per event).
type scriptedBatchMaster struct {
	mu         sync.Mutex
	batch      []wire.TaskSpec
	given      bool
	cancelID   sched.TaskID
	cancelSent bool
	completed  []sched.TaskID
}

func (f *scriptedBatchMaster) Call(req wire.Envelope) (wire.Envelope, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case req.Register != nil:
		return wire.Envelope{RegisterAck: &wire.RegisterAckMsg{Slave: 0}}, nil
	case req.Request != nil:
		if f.given {
			return wire.Envelope{Assign: &wire.AssignMsg{Done: true}}, nil
		}
		f.given = true
		return wire.Envelope{Assign: &wire.AssignMsg{Tasks: f.batch}}, nil
	case req.Progress != nil:
		if f.cancelSent {
			return wire.Envelope{ProgressAck: &wire.ProgressAckMsg{}}, nil
		}
		f.cancelSent = true
		return wire.Envelope{ProgressAck: &wire.ProgressAckMsg{Cancel: []sched.TaskID{f.cancelID}}}, nil
	case req.Complete != nil:
		f.completed = append(f.completed, req.Complete.Task)
		return wire.Envelope{CompleteAck: &wire.CompleteAckMsg{Accepted: true}}, nil
	}
	return wire.Envelope{Error: "unexpected"}, nil
}

func (f *scriptedBatchMaster) Close() error { return nil }

// failCaller always errors.
type failCaller struct{ err error }

func (f failCaller) Call(wire.Envelope) (wire.Envelope, error) { return wire.Envelope{}, f.err }
func (f failCaller) Close() error                              { return nil }

func TestRunRegisterFailure(t *testing.T) {
	eng, _ := testEngine(t)
	if _, err := Run(failCaller{err: fmt.Errorf("boom")}, eng, Options{}); err == nil {
		t.Error("register failure not surfaced")
	}
}

// badAckCaller acknowledges registration but answers requests nonsensically.
type badAckCaller struct{ registered bool }

func (b *badAckCaller) Call(req wire.Envelope) (wire.Envelope, error) {
	if req.Register != nil {
		return wire.Envelope{RegisterAck: &wire.RegisterAckMsg{Slave: 0}}, nil
	}
	return wire.Envelope{ProgressAck: &wire.ProgressAckMsg{}}, nil // wrong type
}
func (b *badAckCaller) Close() error { return nil }

func TestRunBadResponses(t *testing.T) {
	eng, _ := testEngine(t)
	if _, err := Run(&badAckCaller{}, eng, Options{}); err == nil {
		t.Error("nonsense Assign response not surfaced")
	}
	// Missing RegisterAck entirely.
	noAck := &scriptedMaster{}
	brokenReg := callerFunc(func(req wire.Envelope) (wire.Envelope, error) {
		if req.Register != nil {
			return wire.Envelope{}, nil
		}
		return noAck.Call(req)
	})
	if _, err := Run(brokenReg, eng, Options{}); err == nil {
		t.Error("missing RegisterAck not surfaced")
	}
}

type callerFunc func(wire.Envelope) (wire.Envelope, error)

func (f callerFunc) Call(req wire.Envelope) (wire.Envelope, error) { return f(req) }
func (f callerFunc) Close() error                                  { return nil }

func TestRunDoneViaCompleteAck(t *testing.T) {
	// The job-done flag on the CompleteAck must stop the loop without
	// another Request round trip.
	eng, specs := testEngine(t)
	requests := 0
	m := &scriptedMaster{tasks: specs[:1], doneAfter: 1}
	counting := callerFunc(func(req wire.Envelope) (wire.Envelope, error) {
		if req.Request != nil {
			requests++
		}
		return m.Call(req)
	})
	if _, err := Run(counting, eng, Options{NotifyEvery: time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if requests != 1 {
		t.Errorf("%d Request round trips, want 1 (Done piggybacked on CompleteAck)", requests)
	}
}

// blockingEngine reports progress once and then waits on its cancel
// channel: a stand-in for a long scan that can only end by cancellation.
type blockingEngine struct{}

func (blockingEngine) Name() string            { return "stub" }
func (blockingEngine) Kind() sched.SlaveKind   { return sched.KindCPU }
func (blockingEngine) DeclaredSpeed() float64  { return 0 }
func (blockingEngine) DatabaseResidues() int64 { return 1000 }

func (blockingEngine) Search(q *seq.Sequence, progress func(int64), cancel <-chan struct{}) ([]wire.Hit, error) {
	progress(1)
	select {
	case <-cancel:
		return nil, ErrCanceled
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("scan kept running after the master died")
	}
}

// TestRunTaskAbortsScanWhenMasterDies: when a progress notification
// fails, the master can never cancel the task (or hear its result), so
// runTask must cancel it itself and abort the in-flight scan instead of
// grinding out the rest of the database.
func TestRunTaskAbortsScanWhenMasterDies(t *testing.T) {
	canceled := newCancelSet()
	dead := fmt.Errorf("connection reset")
	caller := callerFunc(func(req wire.Envelope) (wire.Envelope, error) {
		switch {
		case req.Progress != nil:
			return wire.Envelope{}, dead
		case req.Complete != nil:
			t.Error("completion sent to a master whose progress call already failed")
		}
		return wire.Envelope{}, nil
	})
	spec := wire.TaskSpec{ID: 42, QueryID: "q", Residues: []byte("MKVLATLLLLGA"), Cells: 12 * 1000}
	_, _, err := runTask(caller, blockingEngine{}, 0, spec, canceled, Options{TopK: 2})
	if err != dead {
		t.Fatalf("runTask error = %v, want the dead master's %v", err, dead)
	}
	if !canceled.has(42) {
		t.Error("failed progress call did not self-cancel task 42; the scan would grind on for a dead master")
	}
}
