package master_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/master"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/slave"
	"repro/internal/wire"
)

// failingCaller passes through to a Local transport until `after` calls,
// then reports a connection failure — a slave process dying mid-job.
type failingCaller struct {
	inner   wire.Caller
	after   int
	calls   int
	slaveID sched.SlaveID
	mu      sync.Mutex
}

func (f *failingCaller) Call(req wire.Envelope) (wire.Envelope, error) {
	f.mu.Lock()
	f.calls++
	dead := f.calls > f.after
	f.mu.Unlock()
	if dead {
		return wire.Envelope{}, errConnLost
	}
	resp, err := f.inner.Call(req)
	if err == nil && resp.RegisterAck != nil {
		f.mu.Lock()
		f.slaveID = resp.RegisterAck.Slave
		f.mu.Unlock()
	}
	return resp, err
}

func (f *failingCaller) Close() error { return nil }

var errConnLost = &connError{}

type connError struct{}

func (*connError) Error() string { return "connection lost" }

// TestSlaveDiesMidJobSurvivorFinishes kills one slave after a few protocol
// calls; the master must requeue its work and the survivor must finish the
// whole job with correct results.
func TestSlaveDiesMidJobSurvivorFinishes(t *testing.T) {
	db, queries := testJob(t, 6)
	m, err := master.New(master.Config{
		Queries:    queries,
		DBResidues: dbResidues(db),
		Policy:     sched.SS{},
		Adjust:     true,
	})
	if err != nil {
		t.Fatal(err)
	}

	dying, _ := slave.NewFarrarEngine("dying", score.DefaultProtein(), db, 0)
	survivor, _ := slave.NewFarrarEngine("survivor", score.DefaultProtein(), db, 0)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		fc := &failingCaller{inner: wire.Local{H: m}, after: 3}
		_, err := slave.Run(fc, dying, slave.Options{NotifyEvery: time.Millisecond, Poll: time.Millisecond})
		if err == nil {
			t.Error("dying slave should report an error")
		}
		// The TCP layer would call SlaveGone on the dropped connection;
		// the in-process transport emulates it here.
		m.SlaveGone(fc.slaveID)
	}()
	go func() {
		defer wg.Done()
		// Give the dying slave a head start so it actually takes work.
		time.Sleep(10 * time.Millisecond)
		if _, err := slave.Run(wire.Local{H: m}, survivor, slave.Options{
			NotifyEvery: time.Millisecond, Poll: time.Millisecond,
		}); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if err := m.Wait(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	results := m.Results()
	if len(results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(results), len(queries))
	}
	for _, r := range results {
		if len(r.Hits) != len(db) {
			t.Fatalf("query %s: %d hits", r.Query, len(r.Hits))
		}
	}
}

// TestTCPSlaveDisconnectRequeues drops a real TCP connection mid-job and
// checks the serve loop reports the death so the job still completes.
func TestTCPSlaveDisconnectRequeues(t *testing.T) {
	db, queries := testJob(t, 5)
	m, err := master.New(master.Config{
		Queries:    queries,
		DBResidues: dbResidues(db),
		Policy:     sched.SS{},
		Adjust:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Victim: registers, takes one task, then hangs up without finishing.
	victim, err := wire.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := victim.Call(wire.Envelope{Register: &wire.RegisterMsg{Name: "victim"}})
	if err != nil {
		t.Fatal(err)
	}
	vid := resp.RegisterAck.Slave
	assign, err := victim.Call(wire.Envelope{Request: &wire.RequestMsg{Slave: vid}})
	if err != nil || len(assign.Assign.Tasks) == 0 {
		t.Fatalf("victim got no work: %+v, %v", assign, err)
	}
	victim.Close()

	// Worker: a healthy slave that must complete everything.
	eng, _ := slave.NewFarrarEngine("worker", score.DefaultProtein(), db, 0)
	client, err := wire.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := slave.Run(client, eng, slave.Options{
		NotifyEvery: time.Millisecond, Poll: 2 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Results()); got != len(queries) {
		t.Fatalf("%d results", got)
	}
}
