package master_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/master"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/slave"
	"repro/internal/wire"
)

var testBackoff = wire.Backoff{Base: 2 * time.Millisecond, Cap: 10 * time.Millisecond, Jitter: 0.1}

// TestLeaseRescuesHungSlave is the headline failure-detection scenario over
// real TCP: a slave wedges mid-task with its connection still open, so
// SlaveGone never fires; with Adjust off, only the lease can requeue its
// task. The job must still complete.
func TestLeaseRescuesHungSlave(t *testing.T) {
	db, queries := testJob(t, 4)
	m, err := master.New(master.Config{
		Queries:    queries,
		DBResidues: dbResidues(db),
		Policy:     sched.SS{},
		Adjust:     false,
		Lease:      150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// The hung slave registers, takes a task, then wedges on its next call
	// (the first progress notification) with the socket open.
	hungEng, _ := slave.NewFarrarEngine("hung", score.DefaultProtein(), db, 0)
	hc, err := wire.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fc := wire.NewFaultCaller(hc, 1, wire.Rule{Kind: wire.AnyMsg, After: 2, Action: wire.FaultHang})
	hungErr := make(chan error, 1)
	go func() {
		_, err := slave.Run(fc, hungEng, slave.Options{
			NotifyEvery: time.Millisecond,
			Poll:        time.Millisecond,
		})
		hungErr <- err
	}()
	// Wait until the hang has fired: the slave now holds a task and will
	// never be heard from again.
	deadline := time.Now().Add(5 * time.Second)
	for fc.Fired(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hung slave never reached its hang")
		}
		time.Sleep(time.Millisecond)
	}

	healthyEng, _ := slave.NewFarrarEngine("healthy", score.DefaultProtein(), db, 0)
	client, err := wire.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	healthyErr := make(chan error, 1)
	go func() {
		_, err := slave.Run(client, healthyEng, slave.Options{
			NotifyEvery: 10 * time.Millisecond,
			Poll:        5 * time.Millisecond,
		})
		healthyErr <- err
	}()

	if err := m.Wait(10 * time.Second); err != nil {
		t.Fatalf("job hung: %v (lease expiry did not requeue the wedged slave's task)", err)
	}
	if err := <-healthyErr; err != nil {
		t.Fatal(err)
	}
	fc.Close() // release the wedged call; the hung slave errors out
	if err := <-hungErr; err == nil {
		t.Error("hung slave finished cleanly; its call should have failed on release")
	}
	m.Close()

	if !m.Coordinator().Dead(0) {
		t.Error("hung slave (id 0) was not declared dead by the lease")
	}
	results := m.Results()
	if len(results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(results), len(queries))
	}
	for _, r := range results {
		if r.Slave != 1 {
			t.Errorf("query %s credited to slave %d; every result must come from the healthy slave", r.Query, r.Slave)
		}
		if len(r.Hits) == 0 {
			t.Errorf("query %s has no hits", r.Query)
		}
	}
}

// TestKilledSlaveReconnectsNoDuplicates drops the response to a completion:
// the master accepts the result, the slave sees a dead connection, redials
// and re-registers. The finished task must not run or count twice.
func TestKilledSlaveReconnectsNoDuplicates(t *testing.T) {
	db, queries := testJob(t, 4)
	m, err := master.New(master.Config{
		Queries:    queries,
		DBResidues: dbResidues(db),
		Policy:     sched.SS{},
		Adjust:     false,
		Lease:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	eng, _ := slave.NewFarrarEngine("flaky", score.DefaultProtein(), db, 0)
	dial := func() (wire.Caller, error) { return wire.Dial(l.Addr().String()) }
	c0, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	fc := wire.NewFaultCaller(c0, 1, wire.Rule{Kind: wire.CompleteKind, Action: wire.FaultDrop, Count: 1})
	n, err := slave.Run(fc, eng, slave.Options{
		NotifyEvery: 10 * time.Millisecond,
		Poll:        5 * time.Millisecond,
		Reconnect:   dial,
		MaxRetries:  5,
		Backoff:     testBackoff,
		RetrySeed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// One ack was lost, so the slave itself counted one task fewer than the
	// master accepted — and nothing ran twice.
	if n != len(queries)-1 {
		t.Errorf("slave counted %d completions, want %d (one ack dropped)", n, len(queries)-1)
	}
	if got := m.Coordinator().Pool().Finished(); got != len(queries) {
		t.Errorf("pool finished = %d, want %d", got, len(queries))
	}
	if got := m.Coordinator().Slaves(); got != 2 {
		t.Errorf("%d registered slaves, want 2 (original + reconnection)", got)
	}
	if !m.Coordinator().Dead(0) || m.Coordinator().Dead(1) {
		t.Error("the torn-down identity should be dead, the reconnected one alive")
	}
	results := m.Results()
	if len(results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(results), len(queries))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.Query] {
			t.Errorf("query %s has duplicate results", r.Query)
		}
		seen[r.Query] = true
		if len(r.Hits) == 0 {
			t.Errorf("query %s has no hits", r.Query)
		}
	}
}

// TestMasterRestartFromCheckpoint kills a master that already banked one
// result and restarts it from its checkpoint on a fresh address. A slave
// that was dialing all along reconnects, re-registers and finishes only the
// unfinished tasks.
func TestMasterRestartFromCheckpoint(t *testing.T) {
	db, queries := testJob(t, 4)
	cfg := master.Config{
		Queries:    queries,
		DBResidues: dbResidues(db),
		Policy:     sched.SS{},
		Adjust:     false,
		Lease:      200 * time.Millisecond,
	}
	m1, err := master.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A first-life slave completes one task, then the master dies.
	reg := m1.Dispatch(wire.Envelope{Register: &wire.RegisterMsg{Name: "first-life"}})
	as := m1.Dispatch(wire.Envelope{Request: &wire.RequestMsg{Slave: reg.RegisterAck.Slave}})
	if len(as.Assign.Tasks) == 0 {
		t.Fatal("setup: no task assigned")
	}
	first := as.Assign.Tasks[0]
	m1.Dispatch(wire.Envelope{Complete: &wire.CompleteMsg{
		Slave: reg.RegisterAck.Slave, Task: first.ID,
		Hits: []wire.Hit{{SeqID: "banked", Score: 7}}, Cells: first.Cells, Rate: 1e6,
	}})
	var ckpt bytes.Buffer
	if err := m1.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2, err := master.LoadCheckpoint(&ckpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The slave is already retrying before the restarted master listens:
	// every dial fails until the new address appears.
	var mu sync.Mutex
	addr := ""
	dial := func() (wire.Caller, error) {
		mu.Lock()
		a := addr
		mu.Unlock()
		if a == "" {
			return nil, fmt.Errorf("master down")
		}
		return wire.Dial(a)
	}
	eng, _ := slave.NewFarrarEngine("survivor", score.DefaultProtein(), db, 0)
	type outcome struct {
		n   int
		err error
	}
	slaveDone := make(chan outcome, 1)
	go func() {
		n, err := slave.Run(&failingCaller{}, eng, slave.Options{
			NotifyEvery: 10 * time.Millisecond,
			Poll:        5 * time.Millisecond,
			Reconnect:   dial,
			MaxRetries:  100,
			Backoff:     testBackoff,
			RetrySeed:   7,
		})
		slaveDone <- outcome{n, err}
	}()
	time.Sleep(30 * time.Millisecond) // let a few dials fail

	l, err := m2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mu.Lock()
	addr = l.Addr().String()
	mu.Unlock()

	if err := m2.Wait(10 * time.Second); err != nil {
		t.Fatalf("restarted job never finished: %v", err)
	}
	out := <-slaveDone
	if out.err != nil {
		t.Fatal(out.err)
	}
	m2.Close()

	if out.n != len(queries)-1 {
		t.Errorf("survivor ran %d tasks, want %d (the checkpointed one must not re-run)", out.n, len(queries)-1)
	}
	results := m2.Results()
	if len(results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(results), len(queries))
	}
	banked := false
	for _, r := range results {
		if len(r.Hits) == 1 && r.Hits[0].SeqID == "banked" {
			banked = true
		}
	}
	if !banked {
		t.Error("the pre-restart result did not survive the checkpoint")
	}
}

// TestConcurrentDispatchStress hammers the master from many synthetic
// slaves while connections drop and a very short lease expires them; run
// under -race it proves the locking around the coordinator, the pending
// cancellations and the expiry ticker.
func TestConcurrentDispatchStress(t *testing.T) {
	_, queries := testJob(t, 30)
	m, err := master.New(master.Config{
		Queries:    queries,
		DBResidues: 1000,
		Policy:     sched.SS{},
		Adjust:     true,
		Lease:      5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		// Checkpointing and reporting race the protocol in production too.
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			m.SaveCheckpoint(&buf)
			m.Results()
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			register := func() sched.SlaveID {
				r := m.Dispatch(wire.Envelope{Register: &wire.RegisterMsg{Name: fmt.Sprintf("s%d", w)}})
				return r.RegisterAck.Slave
			}
			id := register()
			for i := 0; i < 200; i++ {
				resp := m.Dispatch(wire.Envelope{Request: &wire.RequestMsg{Slave: id}})
				if resp.Error != "" {
					// Expired under the tiny lease: come back as a new slave.
					id = register()
					continue
				}
				if resp.Assign == nil || resp.Assign.Done {
					return
				}
				for _, spec := range resp.Assign.Tasks {
					m.Dispatch(wire.Envelope{Progress: &wire.ProgressMsg{Slave: id, Rate: 1e6, Cells: spec.Cells / 2}})
					if i%7 == 3 {
						// The connection drops mid-task.
						m.SlaveGone(id)
						id = register()
						break
					}
					m.Dispatch(wire.Envelope{Complete: &wire.CompleteMsg{
						Slave: id, Task: spec.ID, Cells: spec.Cells / 2, Rate: 1e6,
					}})
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	m.Close()
	if got := m.Coordinator().Pool().Finished(); got == 0 {
		t.Error("stress run finished no tasks at all")
	}
}
