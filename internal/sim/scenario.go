// Package sim is a deterministic whole-cluster simulator: it composes the
// repo's existing pieces — the vtime discrete-event clock, platform.PE
// speed models, the sched.Coordinator, the master protocol core
// (master.Core), the wire fault-rule engine (wire.RuleSet), wire.Backoff
// reconnect schedules, and the jobs WAL replay (jobs.Replay) — behind a
// single seeded rand source and a virtual-time event loop.
//
// A Scenario describes one adversarial cluster run: slave speeds and fault
// schedules (crash, hang, slow-down, message drop/delay/duplicate), the
// allocation policy, and master restarts with checkpoint + WAL recovery.
// Run executes it to quiescence and checks the invariant library (see
// Report.Violations). The whole run is a pure function of the scenario —
// no goroutines, no wall clock, no global randomness — which the purity
// analyzer (internal/analysis) enforces mechanically, and which is what
// makes every failure a replayable seed.
package sim

import (
	"fmt"
	"time"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/wire"
)

// SlaveSpec describes one simulated slave and its fault schedule. The speed
// model fields (Speed, Jitter, Overhead, Slow) map directly onto a
// platform.PE, so the simulator's slaves slow down and wobble exactly like
// the calibrated discrete-event experiments.
type SlaveSpec struct {
	Name string          `json:"name"`
	Kind sched.SlaveKind `json:"kind"`
	// Speed is the sustained throughput in cells/second.
	Speed float64 `json:"speed"`
	// Declared is the registration speed (WFixed baseline); 0 means Speed.
	Declared float64 `json:"declared,omitempty"`
	// Jitter is the relative half-width of per-slice speed noise.
	Jitter float64 `json:"jitter,omitempty"`
	// Overhead is charged once per task execution.
	Overhead time.Duration `json:"overhead,omitempty"`
	// Slow lists capacity-scaling windows (the paper's §V-C local-load
	// experiment shape).
	Slow []platform.LoadPhase `json:"slow,omitempty"`
	// CrashAt kills the slave at this virtual time: its connection drops
	// (the master hears SlaveGone) and all in-flight work dies with it.
	// Zero means never.
	CrashAt time.Duration `json:"crash_at,omitempty"`
	// HangAt wedges the slave silently at this virtual time: no SlaveGone,
	// no further messages — only lease expiry or workload adjustment can
	// rescue its tasks. Zero means never.
	HangAt time.Duration `json:"hang_at,omitempty"`
	// RecoverAt reboots a crashed or hung slave at this virtual time: a
	// fresh incarnation re-registers for a new ID. Zero means never.
	RecoverAt time.Duration `json:"recover_at,omitempty"`
	// Rules inject message faults on this slave's link (drop, delay,
	// duplicate, error, hang), decided by the scenario-seeded wire.RuleSet.
	Rules []wire.Rule `json:"rules,omitempty"`
}

// TenantSpec describes one tenant's runtime arrival stream and its
// scheduling contract. Arrivals are new queries submitted to the running
// job (master.Core.Submit) on a fixed timetable; the fair scheduler must
// interleave them with other tenants' backlogs. Quotas are enforced by the
// same jobs.TenantBook the HTTP front door uses, so an over-quota arrival
// is rejected exactly like a 429.
type TenantSpec struct {
	Name string `json:"name"`
	// Weight scales the tenant's fair share; 0 means 1.
	Weight float64 `json:"weight,omitempty"`
	// Jobs is how many arrival queries the tenant submits.
	Jobs int `json:"jobs"`
	// Residues is each arrival query's length; 0 means 400.
	Residues int `json:"residues,omitempty"`
	// StartAt is the first arrival's virtual time.
	StartAt time.Duration `json:"start_at,omitempty"`
	// Every is the inter-arrival gap; 0 means 250ms.
	Every time.Duration `json:"every,omitempty"`
	// Priority tags the tenant's tasks (ordering within the tenant only).
	Priority int `json:"priority,omitempty"`
	// MaxOutstanding caps the tenant's admitted-but-unfinished arrivals;
	// over-quota arrivals are rejected (and counted). 0 means unlimited.
	MaxOutstanding int `json:"max_outstanding,omitempty"`
	// MaxWait is the per-arrival admit→complete SLO the invariant library
	// enforces — the no-starvation check. 0 skips the check. Derive it from
	// the tenant's DRF entitlement: work / (weight-share × capacity), plus
	// slack for the non-preemptible task ahead.
	MaxWait time.Duration `json:"max_wait,omitempty"`
}

// AutoscaleSpec adds an elastic slave pool driven by the pure
// autoscale.Controller: a recurring observation tick feeds it the ready
// backlog and the alive pool size, Grow boots a fresh slave from the
// template, and Shrink retires the most recently booted elastic slave
// (its connection drops; the master requeues its work).
type AutoscaleSpec struct {
	// Slave is the template for booted machines; its Name becomes a prefix
	// ("auto" → auto-0, auto-1, …). Fault schedules are not allowed on the
	// template — chaos belongs to the static slaves.
	Slave SlaveSpec `json:"slave"`
	// Every is the observation interval; 0 means 500ms.
	Every time.Duration `json:"every,omitempty"`
	// BootDelay is the Grow→register lag; 0 means 100ms.
	BootDelay time.Duration `json:"boot_delay,omitempty"`
	// Min and Max clamp the pool (static + elastic alive machines).
	// Min 0 means len(Slaves); Max 0 means Min+2.
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
	// Controller thresholds and dwells; zero values take the
	// autoscale.Config defaults.
	UpAt      float64       `json:"up_at,omitempty"`
	DownAt    float64       `json:"down_at,omitempty"`
	UpAfter   time.Duration `json:"up_after,omitempty"`
	DownAfter time.Duration `json:"down_after,omitempty"`
	Cooldown  time.Duration `json:"cooldown,omitempty"`
	// MaxActions is the flip-budget invariant: a run may apply at most this
	// many scale actions. 0 means 2×(Max−Min)+4 — enough to reach either
	// clamp and correct once, not enough to flap.
	MaxActions int `json:"max_actions,omitempty"`
}

// MasterRestart crashes the master at At and restores it — from its last
// checkpoint and the jobs WAL — DownFor later. While down, every call gets
// a connection-refused error and slaves ride their reconnect backoff.
type MasterRestart struct {
	At      time.Duration `json:"at"`
	DownFor time.Duration `json:"down_for"`
}

// Scenario is one complete simulated cluster run. The zero value of most
// knobs means "a sensible default" (see fill); Slaves and TaskResidues are
// required.
type Scenario struct {
	Name string `json:"name,omitempty"`
	// Seed drives every random draw in the run: fault-rule probabilities,
	// speed jitter, backoff jitter, WAL tearing. Same scenario + same seed
	// ⇒ byte-identical event log and results.
	Seed int64 `json:"seed"`
	// TaskResidues lists the query lengths; task i costs
	// TaskResidues[i] × DBResidues cells.
	TaskResidues []int `json:"task_residues"`
	// DBResidues is the database size; 0 means 1e6.
	DBResidues int64 `json:"db_residues,omitempty"`
	// Policy is the allocation policy name (sched.NewPolicy); "" means PSS.
	Policy string `json:"policy,omitempty"`
	// Adjust enables the workload adjustment mechanism (task replication).
	Adjust bool `json:"adjust,omitempty"`
	// Omega is the PSS notification window; 0 means the sched default.
	Omega int `json:"omega,omitempty"`
	// Lease enables lease-based failure detection; 0 disables it (then
	// only crash detection and adjustment can rescue stuck tasks).
	Lease time.Duration `json:"lease,omitempty"`
	// NotifyEvery is the slaves' progress-notification interval.
	NotifyEvery time.Duration `json:"notify_every,omitempty"`
	// PollEvery is the standby re-poll interval.
	PollEvery time.Duration `json:"poll_every,omitempty"`
	// Latency is the one-way message latency.
	Latency time.Duration `json:"latency,omitempty"`
	// CallTimeout is how long a slave waits on a lost response before
	// treating the call as failed.
	CallTimeout time.Duration `json:"call_timeout,omitempty"`
	// TearWAL, when set, tears a seeded amount off the jobs WAL tail at
	// each master crash — the torn-tail recovery path under test.
	TearWAL bool `json:"tear_wal,omitempty"`

	Slaves   []SlaveSpec     `json:"slaves"`
	Restarts []MasterRestart `json:"restarts,omitempty"`

	// Tenants adds runtime arrival streams with fair-share contracts; see
	// TenantSpec. The scenario's seed tasks stay anonymous background work.
	Tenants []TenantSpec `json:"tenants,omitempty"`
	// Autoscale adds an elastic slave pool; see AutoscaleSpec.
	Autoscale *AutoscaleSpec `json:"autoscale,omitempty"`
	// Preempt lets the coordinator revoke replicated task copies in favor
	// of higher-priority or underserved-tenant ready work (sole copies are
	// never revoked — the invariant library checks every preemption event).
	Preempt bool `json:"preempt,omitempty"`
	// PreemptFactor is the share-imbalance trigger ratio; 0 means the sched
	// default (1.5).
	PreemptFactor float64 `json:"preempt_factor,omitempty"`
	// CheckFairShare turns on the DRF envy-freeness sweep: while two
	// tenants are both backlogged, their weight-normalized served cells may
	// differ by at most FairTolerance (relative) plus FairSlackCells
	// (absolute, covering coarse-task granularity).
	CheckFairShare bool `json:"check_fair_share,omitempty"`
	// FairTolerance is the relative envy tolerance; 0 means 0.10.
	FairTolerance float64 `json:"fair_tolerance,omitempty"`
	// FairSlackCells is the absolute envy slack; 0 means 2× the largest
	// arrival task's cells.
	FairSlackCells int64 `json:"fair_slack_cells,omitempty"`

	// MaxEvents bounds the event loop against livelock; 0 means 500_000.
	// Hitting the bound is reported as a quiescence violation.
	MaxEvents uint64 `json:"max_events,omitempty"`
}

// Defaults applied by fill.
const (
	defaultDBResidues  = int64(1_000_000)
	defaultNotifyEvery = 250 * time.Millisecond
	defaultPollEvery   = 500 * time.Millisecond
	defaultLatency     = 5 * time.Millisecond
	defaultCallTimeout = time.Second
	defaultMaxEvents   = 500_000
)

// fill resolves zero knobs to defaults, returning a copy.
func (sc Scenario) fill() Scenario {
	if sc.DBResidues <= 0 {
		sc.DBResidues = defaultDBResidues
	}
	if sc.NotifyEvery <= 0 {
		sc.NotifyEvery = defaultNotifyEvery
	}
	if sc.PollEvery <= 0 {
		sc.PollEvery = defaultPollEvery
	}
	if sc.Latency <= 0 {
		sc.Latency = defaultLatency
	}
	if sc.CallTimeout <= 0 {
		sc.CallTimeout = defaultCallTimeout
	}
	if sc.MaxEvents == 0 {
		sc.MaxEvents = defaultMaxEvents
	}
	if sc.FairTolerance <= 0 {
		sc.FairTolerance = 0.10
	}
	sc.Tenants = append([]TenantSpec(nil), sc.Tenants...)
	for i := range sc.Tenants {
		t := &sc.Tenants[i]
		if t.Weight <= 0 {
			t.Weight = 1
		}
		if t.Residues <= 0 {
			t.Residues = 400
		}
		if t.Every <= 0 {
			t.Every = 250 * time.Millisecond
		}
	}
	if sc.Autoscale != nil {
		a := *sc.Autoscale
		if a.Every <= 0 {
			a.Every = 500 * time.Millisecond
		}
		if a.BootDelay <= 0 {
			a.BootDelay = 100 * time.Millisecond
		}
		if a.Min <= 0 {
			a.Min = len(sc.Slaves)
		}
		if a.Max <= 0 {
			a.Max = a.Min + 2
		}
		if a.MaxActions <= 0 {
			a.MaxActions = 2*(a.Max-a.Min) + 4
		}
		sc.Autoscale = &a
	}
	return sc
}

// Validate rejects unusable scenarios before any events fire.
func (sc Scenario) Validate() error {
	sc = sc.fill()
	if len(sc.TaskResidues) == 0 {
		return fmt.Errorf("sim: scenario %q has no tasks", sc.Name)
	}
	for i, r := range sc.TaskResidues {
		if r <= 0 {
			return fmt.Errorf("sim: task %d has %d residues", i, r)
		}
	}
	if len(sc.Slaves) == 0 {
		return fmt.Errorf("sim: scenario %q has no slaves", sc.Name)
	}
	if sc.Policy != "" {
		if _, err := sched.NewPolicy(sc.Policy); err != nil {
			return err
		}
	}
	seen := map[string]bool{}
	for _, s := range sc.Slaves {
		pe := s.pe()
		if err := pe.Validate(); err != nil {
			return err
		}
		if seen[s.Name] {
			return fmt.Errorf("sim: duplicate slave name %q", s.Name)
		}
		seen[s.Name] = true
		if s.CrashAt != 0 && s.HangAt != 0 {
			return fmt.Errorf("sim: slave %s has both CrashAt and HangAt", s.Name)
		}
		if s.RecoverAt != 0 {
			failAt := s.CrashAt
			if failAt == 0 {
				failAt = s.HangAt
			}
			if failAt == 0 {
				return fmt.Errorf("sim: slave %s has RecoverAt without CrashAt/HangAt", s.Name)
			}
			if s.RecoverAt <= failAt {
				return fmt.Errorf("sim: slave %s recovers at %v before failing at %v", s.Name, s.RecoverAt, failAt)
			}
		}
		for _, r := range s.Rules {
			if r.Prob < 0 || r.Prob > 1 {
				return fmt.Errorf("sim: slave %s rule probability %v outside [0,1]", s.Name, r.Prob)
			}
		}
	}
	for i, r := range sc.Restarts {
		if r.At <= 0 || r.DownFor <= 0 {
			return fmt.Errorf("sim: restart %d has non-positive At/DownFor", i)
		}
		if i > 0 && r.At <= sc.Restarts[i-1].At+sc.Restarts[i-1].DownFor {
			return fmt.Errorf("sim: restart %d overlaps restart %d", i, i-1)
		}
	}
	if sc.CallTimeout <= 2*sc.Latency {
		return fmt.Errorf("sim: CallTimeout %v must exceed a round trip (2×%v)", sc.CallTimeout, sc.Latency)
	}
	tenants := map[string]bool{}
	for i, t := range sc.Tenants {
		if t.Name == "" {
			return fmt.Errorf("sim: tenant %d has no name", i)
		}
		if tenants[t.Name] {
			return fmt.Errorf("sim: duplicate tenant %q", t.Name)
		}
		tenants[t.Name] = true
		if t.Jobs < 0 || t.Residues < 0 || t.Weight < 0 || t.MaxOutstanding < 0 {
			return fmt.Errorf("sim: tenant %q has a negative knob", t.Name)
		}
	}
	if a := sc.Autoscale; a != nil {
		if err := a.Slave.pe().Validate(); err != nil {
			return fmt.Errorf("sim: autoscale template: %w", err)
		}
		if a.Slave.CrashAt != 0 || a.Slave.HangAt != 0 || a.Slave.RecoverAt != 0 {
			return fmt.Errorf("sim: autoscale template %q must not carry a fault schedule", a.Slave.Name)
		}
		if a.Max < a.Min {
			return fmt.Errorf("sim: autoscale Max %d < Min %d", a.Max, a.Min)
		}
	}
	return nil
}

// pe builds the platform speed model for a slave spec.
func (s SlaveSpec) pe() *platform.PE {
	return &platform.PE{
		Name:         s.Name,
		Kind:         s.Kind,
		CellsPerSec:  s.Speed,
		TaskOverhead: s.Overhead,
		Jitter:       s.Jitter,
		Load:         s.Slow,
		Declared:     s.Declared,
	}
}
