package master_test

import (
	"testing"
	"time"

	"repro/internal/master"
	"repro/internal/prefilter"
	"repro/internal/sched"
	"repro/internal/seq"
	"repro/internal/wire"
)

func mkSeq(t *testing.T, id, residues string) *seq.Sequence {
	t.Helper()
	return seq.New(id, "", []byte(residues))
}

// A runtime arrival grows the pool 1:1 with the query list, carries its
// tenant and priority into the task, and the grown job still checkpoints
// and restores through RestoreCore.
func TestSubmitGrowsJobAndRestores(t *testing.T) {
	queries := []*seq.Sequence{mkSeq(t, "q0", "MKVLAA"), mkSeq(t, "q1", "MKVLAAW")}
	c, err := master.NewCore(queries, 1000, sched.Config{Policy: sched.SS{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q2 := mkSeq(t, "q2", "WWMKVL")
	tid, err := c.Submit(q2, "alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	if tid != 2 {
		t.Fatalf("arrival task ID = %d, want 2 (1:1 with query order)", tid)
	}
	task := c.Coordinator().Pool().Task(tid)
	if task.Tenant != "alice" || task.Priority != 2 || task.Cells != int64(q2.Len())*1000 {
		t.Fatalf("arrival task = %+v", task)
	}

	// The arrival is dispatchable: its spec resolves the right residues.
	reg := c.Dispatch(wire.Envelope{Register: &wire.RegisterMsg{Name: "s0", Kind: sched.KindCPU, DeclaredSpeed: 1e6}}, 0)
	sid := reg.RegisterAck.Slave
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp := c.Dispatch(wire.Envelope{Request: &wire.RequestMsg{Slave: sid}}, time.Duration(i)*time.Second)
		for _, spec := range resp.Assign.Tasks {
			seen[spec.QueryID] = true
			if spec.QueryID == "q2" && string(spec.Residues) != "WWMKVL" {
				t.Fatalf("arrival spec residues = %q", spec.Residues)
			}
			ack := c.Dispatch(wire.Envelope{Complete: &wire.CompleteMsg{
				Slave: sid, Task: spec.ID, Cells: spec.Cells, Rate: 1e6,
			}}, time.Duration(i)*time.Second+time.Millisecond)
			if !ack.CompleteAck.Accepted {
				t.Fatalf("completion of %q rejected", spec.QueryID)
			}
		}
	}
	if !seen["q2"] || !c.Done() {
		t.Fatalf("arrival never dispatched (seen=%v) or job not done", seen)
	}

	// A checkpoint taken after arrivals restores with the grown query list.
	all := append(append([]*seq.Sequence{}, queries...), q2)
	r, err := master.RestoreCore(c.Snapshot(), all, sched.Config{Policy: sched.SS{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Done() || len(r.Results()) != 3 {
		t.Fatalf("restored core: done=%v results=%d", r.Done(), len(r.Results()))
	}
}

// Filtered jobs refuse arrivals: their appended tasks are rescore stages.
func TestSubmitRejectedOnFilteredJobs(t *testing.T) {
	queries := []*seq.Sequence{mkSeq(t, "q0", "MKVLAA")}
	c, err := master.NewFilteredCore(queries, 1000, prefilter.Spec{}, sched.Config{Policy: sched.SS{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(mkSeq(t, "q1", "MKVL"), "", 0); err == nil {
		t.Fatal("filtered core accepted a runtime arrival")
	}
}

// A progress heartbeat carries preemption: when an underserved tenant has
// higher-priority ready work, the slave's replicated copy is revoked via
// the ProgressAck cancel list, and the victim task keeps its surviving
// executor.
func TestProgressDeliversPreemption(t *testing.T) {
	queries := []*seq.Sequence{mkSeq(t, "a0", "MKVLAA"), mkSeq(t, "b0", "MKVLAW")}
	c, err := master.NewCore(queries, 1000, sched.Config{Policy: sched.SS{}, Adjust: true, Preempt: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Seed tasks arrive untagged; tag them through arrivals instead: finish
	// the seeds immediately, then run the scenario on tenant arrivals.
	s0 := c.Dispatch(wire.Envelope{Register: &wire.RegisterMsg{Name: "s0", Kind: sched.KindCPU, DeclaredSpeed: 1e3}}, 0).RegisterAck.Slave
	s1 := c.Dispatch(wire.Envelope{Register: &wire.RegisterMsg{Name: "s1", Kind: sched.KindCPU, DeclaredSpeed: 1e6}}, 0).RegisterAck.Slave
	for sid, rate := range map[sched.SlaveID]float64{s0: 1e3, s1: 1e6} {
		resp := c.Dispatch(wire.Envelope{Request: &wire.RequestMsg{Slave: sid}}, 0)
		for _, spec := range resp.Assign.Tasks {
			c.Dispatch(wire.Envelope{Complete: &wire.CompleteMsg{Slave: sid, Task: spec.ID, Cells: spec.Cells, Rate: rate}}, time.Millisecond)
		}
	}

	// alice's arrival runs on slow s0; fast idle s1 replicates it.
	if _, err := c.Submit(mkSeq(t, "a1", "MKVLAAWW"), "alice", 0); err != nil {
		t.Fatal(err)
	}
	g0 := c.Dispatch(wire.Envelope{Request: &wire.RequestMsg{Slave: s0}}, time.Second)
	if len(g0.Assign.Tasks) != 1 {
		t.Fatalf("s0 grant = %+v", g0.Assign)
	}
	victim := g0.Assign.Tasks[0].ID
	rep := c.Dispatch(wire.Envelope{Request: &wire.RequestMsg{Slave: s1}}, 2*time.Second)
	if !rep.Assign.Replica || len(rep.Assign.Tasks) != 1 || rep.Assign.Tasks[0].ID != victim {
		t.Fatalf("replica grant = %+v", rep.Assign)
	}

	// bob submits at higher priority; s1's next heartbeat loses the replica.
	if _, err := c.Submit(mkSeq(t, "b1", "MKVLAWWW"), "bob", 3); err != nil {
		t.Fatal(err)
	}
	ack := c.Dispatch(wire.Envelope{Progress: &wire.ProgressMsg{Slave: s1, Rate: 1e6}}, 3*time.Second)
	if len(ack.ProgressAck.Cancel) != 1 || ack.ProgressAck.Cancel[0] != victim {
		t.Fatalf("heartbeat cancel = %v, want [%d]", ack.ProgressAck.Cancel, victim)
	}
	if st := c.Coordinator().Pool().StateOf(victim); st != sched.Executing {
		t.Fatalf("victim state = %v, want still executing on s0", st)
	}
	log := c.Coordinator().PreemptLog()
	if len(log) != 1 || log[0].Survivors < 1 {
		t.Fatalf("preempt log = %+v", log)
	}
}
