package platform

import (
	"fmt"
	"time"

	"repro/internal/sched"
)

// Calibration anchors (set once, shared by every experiment — see DESIGN.md):
//
//   - SSECoreGCUPS is fixed by Table III's hardest anchor: one SSE core
//     compares the 40 queries (~102,000 residues) against SwissProt
//     (~190.8M residues, 1.95e13 cells) in 7,190 s -> 2.71 GCUPS, squarely
//     in the published range for Farrar-style kernels on a 3.4 GHz core.
//   - GPUPeakGCUPS and GPUTaskOverhead are fixed jointly by Table V's
//     "4 GPUs + 4 SSEs finish SwissProt in 112 s" (needs ~41 effective
//     GCUPS per GPU) and Table IV's observation that the small databases
//     reach only about half the SwissProt GCUPS (the fixed per-task cost —
//     transfers, kernel launches, result collection — cannot amortize over
//     a ~12M-residue database).
const (
	// SSECoreGCUPS is the sustained throughput of one SSE core running the
	// adapted Farrar kernel.
	SSECoreGCUPS = 2.71
	// GPUPeakGCUPS is the sustained CUDASW++ 2.0 throughput of one GTX 580
	// once per-task overheads are excluded.
	GPUPeakGCUPS = 42.0
	// GPUTaskOverhead is the fixed cost a GPU pays per task (one query vs
	// the whole database): host transfers, kernel launches, setup and
	// result collection. 0.7 s makes the small databases run at roughly
	// half the SwissProt GCUPS, Table IV's stated effect.
	GPUTaskOverhead = 700 * time.Millisecond
	// SSETaskOverhead covers query-profile construction on a CPU core.
	SSETaskOverhead = 5 * time.Millisecond
	// DedicatedJitter reproduces Fig. 7's small GCUPS wobble from OS
	// services on an otherwise dedicated machine.
	DedicatedJitter = 0.03
)

// Measured anchors for this repo's own kernels, recalibrated from
// BENCH_2026-08-08.json (BenchmarkScore8SWAR / BenchmarkScore8Emulated,
// 8-bit tier, 400x500 protein comparison on the build host). They sit far
// below the paper's 2.71 GCUPS because the SWAR tier packs only 8 lanes
// into a portable uint64 — no 16-lane SSE registers, no hand-scheduled
// assembly — and the emulated ISA pays a per-lane loop on top of that.
// The paper anchor SSECoreGCUPS above is deliberately left untouched: the
// discrete-event experiments reproduce the published tables, while these
// constants describe what the native kernels actually sustain here.
const (
	// PaperSSECoreGCUPS restates the Table III anchor under its
	// provenance-explicit name; SSECoreGCUPS keeps the short name because
	// every experiment reads it.
	PaperSSECoreGCUPS = SSECoreGCUPS
	// NativeSSECoreGCUPS is the measured throughput of the 64-bit SWAR
	// Farrar kernel (8x8-bit lanes): 316 MCUPS.
	NativeSSECoreGCUPS = 0.316
	// EmulatedSSECoreGCUPS is the measured throughput of the emulated-ISA
	// oracle kernel on the same tier: 58.8 MCUPS. The ~5.4x gap is the
	// SWAR tier's whole justification.
	EmulatedSSECoreGCUPS = 0.0588
)

// NativeSSEPE returns the model of one CPU core running this repo's own
// SWAR kernel rather than the paper's hand-tuned SSE kernel. Use it to
// simulate schedules for the throughput the local binary actually
// delivers; overhead and jitter match SSEPE since profile construction
// and OS noise are kernel-independent.
func NativeSSEPE(name string) *PE {
	return &PE{
		Name:         name,
		Kind:         sched.KindCPU,
		CellsPerSec:  NativeSSECoreGCUPS * 1e9,
		TaskOverhead: SSETaskOverhead,
		Jitter:       DedicatedJitter,
	}
}

// SSEPE returns the model of one SSE core.
func SSEPE(name string) *PE {
	return &PE{
		Name:         name,
		Kind:         sched.KindCPU,
		CellsPerSec:  SSECoreGCUPS * 1e9,
		TaskOverhead: SSETaskOverhead,
		Jitter:       DedicatedJitter,
	}
}

// GPUPE returns the model of one GTX 580 running CUDASW++ 2.0.
func GPUPE(name string) *PE {
	return &PE{
		Name:         name,
		Kind:         sched.KindGPU,
		CellsPerSec:  GPUPeakGCUPS * 1e9,
		TaskOverhead: GPUTaskOverhead,
		Jitter:       DedicatedJitter,
	}
}

// FPGAGCUPS is the sustained throughput of one reconfigurable accelerator,
// modeled on the platform of Meng & Chaudhary [13] that the paper's future
// work plans to integrate (their 1-FPGA + 20-SSE platform reports 25.81
// GCUPS; the FPGA carries most of it).
const FPGAGCUPS = 20.0

// FPGAPE returns the model of one FPGA accelerator. Reconfiguration and
// host transfers cost more per task than a GPU's setup does.
func FPGAPE(name string) *PE {
	return &PE{
		Name:         name,
		Kind:         sched.KindFPGA,
		CellsPerSec:  FPGAGCUPS * 1e9,
		TaskOverhead: 1200 * time.Millisecond,
		Jitter:       DedicatedJitter,
	}
}

// Hybrid builds the paper's standard configurations: nGPU GPUs followed by
// nSSE SSE cores (e.g. Hybrid(4, 4) is the "4 GPUs + 4 SSEs" platform).
func Hybrid(nGPU, nSSE int) []*PE {
	var out []*PE
	for i := 0; i < nGPU; i++ {
		out = append(out, GPUPE(fmt.Sprintf("GPU%d", i+1)))
	}
	for i := 0; i < nSSE; i++ {
		out = append(out, SSEPE(fmt.Sprintf("SSE%d", i+1)))
	}
	return out
}
