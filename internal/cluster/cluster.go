// Package cluster is the sharded scatter-gather backend of the serving
// stack: it partitions the indexed database into contiguous shards, builds
// a replicated engine fleet over them, and executes each search as one
// master-protocol job per shard whose per-query top-k hits are merged
// under the module-wide ranking contract (wire.HitLess). The merge is
// deterministic — score descending, global database index ascending — so a
// sharded run ranks byte-identically to a single-node run over the same
// database, in both full and filtered modes.
//
// Fault tolerance rides the existing master machinery: every shard's
// replicas register with the shard master as independent slaves, so when a
// replica dies mid-scan its connection-drop (SlaveGone) or lease expiry
// requeues its tasks and a surviving replica re-scans them. A job only
// fails when a shard has no live replica left to finish it.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/slave"
	"repro/internal/wire"
)

// ShardState is the lifecycle of one shard's scan within a job. It is a
// closed enum: the exhaustive analyzer audits switches over it.
type ShardState int

const (
	// ShardPending shards have not reported any progress yet.
	ShardPending ShardState = iota
	// ShardScanning shards have live replicas working through tasks.
	ShardScanning
	// ShardDone shards have every task's result collected.
	ShardDone
	// ShardFailed shards ran out of live replicas before finishing.
	ShardFailed
)

// String returns the state name used in progress views and metric labels.
func (s ShardState) String() string {
	switch s {
	case ShardPending:
		return "pending"
	case ShardScanning:
		return "scanning"
	case ShardDone:
		return "done"
	case ShardFailed:
		return "failed"
	default:
		return fmt.Sprintf("ShardState(%d)", int(s))
	}
}

// Config describes a fleet.
type Config struct {
	// DB is the database to shard. Sequences keep their global index:
	// shard boundaries never reorder the database, which is what keeps
	// the merged ranking identical to a single-node scan.
	DB []*seq.Sequence
	// Shards is the number of contiguous database partitions; 0 means 1.
	// Must not exceed len(DB) — every shard holds at least one sequence.
	Shards int
	// Replicas is the number of independent engines per shard; 0 means
	// DefaultReplicas. Each replica can complete the shard's scan alone.
	Replicas int
	// Scheme is the scoring scheme; the zero value uses the paper's
	// BLOSUM62/10/2 default.
	Scheme score.Scheme
	// CPUKernel selects the replica engines' algorithm ("farrar" default,
	// "swipe", "multicore"); CoresPerHost sizes "multicore" engines.
	CPUKernel    string
	CoresPerHost int
	// Lease, when positive, arms each shard master's lease-based failure
	// detector, the backstop for replicas that hang without dropping
	// (crashes are caught promptly through SlaveGone).
	Lease time.Duration
	// Registry, when non-nil, instruments the fleet (cluster_* families)
	// and every shard job's master/scheduler/slave metrics.
	Registry *metrics.Registry
}

// DefaultReplicas is the per-shard replica count when Config.Replicas is 0.
const DefaultReplicas = 2

// replica is one engine copy of a shard. Engines are stateless between
// searches (each Search builds fresh kernels over the shared read-only
// database slice), so the same replica serves any number of concurrent
// jobs.
type replica struct {
	name string
	eng  slave.Engine

	// dead and down are guarded by the owning shard's mu; down is closed
	// exactly when dead flips true, so in-flight callers observe the kill
	// without taking the lock.
	dead bool
	down chan struct{}
}

// shard is one contiguous database partition and its replica set. The
// fields above mu are set once when the fleet is built.
type shard struct {
	index    int
	db       []*seq.Sequence // f.cfg.DB[offset : offset+len(db)]
	offset   int             // global index of db[0]
	residues int64

	mu       sync.Mutex
	replicas []*replica
}

// liveReplicas returns the replicas currently alive, a snapshot under mu.
func (s *shard) liveReplicas() []*replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*replica
	for _, r := range s.replicas {
		if !r.dead {
			out = append(out, r)
		}
	}
	return out
}

// Fleet is a sharded, replicated engine set serving searches. Build one
// per resident database and share it across jobs: SearchContext is safe
// for concurrent use.
type Fleet struct {
	cfg      Config
	shards   []*shard
	met      *Metrics
	wireMet  *wire.Metrics
	slaveMet *slave.Metrics
}

// New partitions the database and builds the replica engines.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.DB) == 0 {
		return nil, fmt.Errorf("cluster: empty database")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > len(cfg.DB) {
		return nil, fmt.Errorf("cluster: %d shards over %d sequences (every shard needs at least one)", cfg.Shards, len(cfg.DB))
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.Scheme.Matrix == nil {
		cfg.Scheme = score.DefaultProtein()
	}
	f := &Fleet{cfg: cfg}
	if cfg.Registry != nil {
		f.met = NewMetrics(cfg.Registry)
		f.wireMet = wire.NewMetrics(cfg.Registry)
		f.slaveMet = slave.NewMetrics(cfg.Registry)
	}
	for _, bounds := range partition(cfg.DB, cfg.Shards) {
		s := &shard{index: len(f.shards), db: cfg.DB[bounds[0]:bounds[1]], offset: bounds[0]}
		for _, d := range s.db {
			s.residues += int64(d.Len())
		}
		for r := 0; r < cfg.Replicas; r++ {
			name := fmt.Sprintf("shard%d/replica%d", s.index, r)
			eng, err := newEngine(name, cfg, s.db)
			if err != nil {
				return nil, err
			}
			s.replicas = append(s.replicas, &replica{name: name, eng: eng, down: make(chan struct{})})
		}
		f.shards = append(f.shards, s)
	}
	if f.met != nil {
		f.met.LiveReplicas.Set(float64(cfg.Shards * cfg.Replicas))
	}
	return f, nil
}

// newEngine builds one replica engine over a shard's database slice,
// mirroring the kernel selection of the local backend.
func newEngine(name string, cfg Config, db []*seq.Sequence) (slave.Engine, error) {
	switch cfg.CPUKernel {
	case "", "farrar":
		return slave.NewFarrarEngine(name, cfg.Scheme, db, 0)
	case "swipe":
		return slave.NewSwipeEngine(name, cfg.Scheme, db, 0)
	case "multicore":
		return slave.NewMulticoreEngine(name, cfg.Scheme, db, cfg.CoresPerHost, 0)
	default:
		return nil, fmt.Errorf("cluster: unknown CPU kernel %q", cfg.CPUKernel)
	}
}

// partition splits the database into n contiguous, residue-balanced
// half-open [start, end) index ranges. Boundaries are chosen greedily
// against the ideal cumulative split points, but never leave a later shard
// without sequences.
func partition(db []*seq.Sequence, n int) [][2]int {
	var total int64
	for _, d := range db {
		total += int64(d.Len())
	}
	bounds := make([][2]int, 0, n)
	start := 0
	var cum int64
	for i := 0; i < n; i++ {
		// Ideal cumulative residue count at the end of shard i.
		target := total * int64(i+1) / int64(n)
		end := start
		for end < len(db) && (end-start == 0 || cum < target) {
			// Leave at least one sequence per remaining shard.
			if len(db)-end <= n-1-i {
				break
			}
			cum += int64(db[end].Len())
			end++
		}
		if i == n-1 {
			end = len(db)
		}
		bounds = append(bounds, [2]int{start, end})
		start = end
	}
	return bounds
}

// Shards returns the shard count.
func (f *Fleet) Shards() int { return len(f.shards) }

// ShardHealth is one shard's liveness snapshot, the /readyz payload.
type ShardHealth struct {
	Shard     int   `json:"shard"`
	Sequences int   `json:"sequences"`
	Residues  int64 `json:"residues"`
	Replicas  int   `json:"replicas"`
	Live      int   `json:"live"`
}

// Health snapshots every shard's replica liveness, in shard order.
func (f *Fleet) Health() []ShardHealth {
	out := make([]ShardHealth, len(f.shards))
	for i, s := range f.shards {
		out[i] = ShardHealth{
			Shard: i, Sequences: len(s.db), Residues: s.residues,
			Replicas: len(s.replicas), Live: len(s.liveReplicas()),
		}
	}
	return out
}

// Ready reports whether every shard has at least one live replica.
func (f *Fleet) Ready() bool {
	for _, h := range f.Health() {
		if h.Live == 0 {
			return false
		}
	}
	return true
}

// KillReplica marks one replica dead, the fault-injection seam chaos tests
// and the e2e crash scenario use: in-flight protocol calls of the replica
// start failing immediately (aborting its scans), its tasks requeue on the
// shard master, and a surviving replica re-scans them.
func (f *Fleet) KillReplica(shardIdx, replicaIdx int) error {
	r, err := f.replicaAt(shardIdx, replicaIdx)
	if err != nil {
		return err
	}
	s := f.shards[shardIdx]
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.dead {
		return nil
	}
	r.dead = true
	close(r.down)
	if f.met != nil {
		f.met.ReplicasKilled.Inc()
		f.met.LiveReplicas.Add(-1)
	}
	return nil
}

// ReviveReplica returns a killed replica to service for jobs submitted
// after the call (jobs already running keep treating it as dead).
func (f *Fleet) ReviveReplica(shardIdx, replicaIdx int) error {
	r, err := f.replicaAt(shardIdx, replicaIdx)
	if err != nil {
		return err
	}
	s := f.shards[shardIdx]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !r.dead {
		return nil
	}
	r.dead = false
	r.down = make(chan struct{})
	if f.met != nil {
		f.met.LiveReplicas.Add(1)
	}
	return nil
}

func (f *Fleet) replicaAt(shardIdx, replicaIdx int) (*replica, error) {
	if shardIdx < 0 || shardIdx >= len(f.shards) {
		return nil, fmt.Errorf("cluster: no shard %d", shardIdx)
	}
	s := f.shards[shardIdx]
	if replicaIdx < 0 || replicaIdx >= len(s.replicas) {
		return nil, fmt.Errorf("cluster: shard %d has no replica %d", shardIdx, replicaIdx)
	}
	return s.replicas[replicaIdx], nil
}
