# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet lint test race race-full bench tables svg csv examples clean

# The concurrency-heavy packages (distributed path + scheduler) always run
# under the race detector as part of `make test`; `race-full` covers the
# whole module.
RACE_PKGS := ./internal/sched/... ./internal/master/... ./internal/slave/... ./internal/wire/... ./internal/httpapi/... ./internal/metrics/... ./internal/jobs/...

all: build lint test

build:
	go build ./...

vet:
	go vet ./...

# Run the repo's own static-analysis suite (see cmd/swcheck and DESIGN §7):
# scheduler purity, enum-switch exhaustiveness, mutex discipline, nil-guarded
# metric handles, dropped errors and metric naming. cmd/metriclint survives
# as a thin alias for the metricname analyzer alone.
lint:
	go run ./cmd/swcheck ./...

test: vet lint
	go test ./...
	go test -race $(RACE_PKGS)

race:
	go test -race $(RACE_PKGS)

race-full:
	go test -race ./...

# Run every benchmark with allocation stats and archive the run as
# BENCH_<date>.json (see EXPERIMENTS.md for the format); raw output
# stays visible on stderr.
bench:
	go test -bench=. -benchmem -run='^$$' ./... | go run ./cmd/benchjson

# Regenerate every table and figure of the paper (EXPERIMENTS.md data).
tables:
	go run ./cmd/benchtables

svg:
	go run ./cmd/benchtables -svg out/svg

csv:
	go run ./cmd/benchtables -csv out/csv

examples:
	@for e in quickstart adjustment hybridsearch nondedicated distributed applications; do \
		echo "=== examples/$$e ==="; go run ./examples/$$e || exit 1; done

clean:
	rm -rf out
