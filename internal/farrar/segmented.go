package farrar

import (
	"fmt"

	"repro/internal/score"
)

// SegmentedKernel scores with the long-query strategy of Meng & Chaudhary
// [13], which the paper's related work describes: accelerators with a
// bounded query size split long queries into overlapping segments, score
// each segment independently, and report the best segment score. The
// result is a lower bound on the true Smith-Waterman score — exact
// whenever the optimal alignment's query span fits inside one segment,
// under-estimating otherwise. As the paper notes, "depending on the degree
// of overlapping, the sensitivity of the SW algorithm is reduced"; the
// Sensitive method reports whether a given alignment span is safe.
type SegmentedKernel struct {
	segLen  int
	overlap int
	kernels []*Kernel
}

// NewSegmentedKernel splits query into segments of segLen residues whose
// starts advance by segLen-overlap, building one striped kernel per
// segment.
func NewSegmentedKernel(query []byte, s score.Scheme, segLen, overlap int) (*SegmentedKernel, error) {
	if segLen < 2 {
		return nil, fmt.Errorf("farrar: segment length %d too small", segLen)
	}
	if overlap < 0 || overlap >= segLen {
		return nil, fmt.Errorf("farrar: overlap %d outside [0, segLen)", overlap)
	}
	if len(query) == 0 {
		return nil, fmt.Errorf("farrar: empty query")
	}
	sk := &SegmentedKernel{segLen: segLen, overlap: overlap}
	step := segLen - overlap
	for start := 0; ; start += step {
		end := min(start+segLen, len(query))
		k, err := NewKernel(query[start:end], s)
		if err != nil {
			return nil, err
		}
		sk.kernels = append(sk.kernels, k)
		if end == len(query) {
			break
		}
	}
	return sk, nil
}

// Segments returns how many segments the query produced.
func (sk *SegmentedKernel) Segments() int { return len(sk.kernels) }

// Score returns the best segment-vs-target score: a lower bound on the
// full-query Smith-Waterman score.
func (sk *SegmentedKernel) Score(target []byte) int {
	best := 0
	for _, k := range sk.kernels {
		if v := k.Score(target); v > best {
			best = v
		}
	}
	return best
}

// Sensitive reports whether an optimal alignment spanning `span` query
// residues is guaranteed to be scored exactly: with starts advancing by
// segLen-overlap, every window of overlap+1 residues lies inside some
// segment, so spans up to overlap+1 are always safe (as is any span up to
// segLen when only one segment exists).
func (sk *SegmentedKernel) Sensitive(span int) bool {
	if len(sk.kernels) == 1 {
		return span <= sk.segLen
	}
	return span <= sk.overlap+1
}
