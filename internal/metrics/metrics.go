// Package metrics is a stdlib-only, race-safe instrumentation subsystem:
// counters, gauges and fixed-bucket histograms collected in a Registry that
// renders both the Prometheus text exposition format (version 0.0.4) and a
// JSON "varz" debug view. A companion EventLog (eventlog.go) emits
// structured JSON-lines scheduler events whose shapes match the
// discrete-event traces of internal/platform, so one jq/pandas toolchain
// reads simulated and wall-clock runs alike.
//
// Metric names must follow the subsystem_name_unit convention enforced by
// CheckName: lowercase snake_case with a subsystem prefix, counters ending
// in _total, histograms ending in a recognised unit suffix. Registration
// panics on violations — a bad name is a programmer error, and failing loud
// keeps the namespace coherent across every process binary.
//
// All metric operations are lock-free atomic updates, safe for any number
// of goroutines; registration and rendering take short internal locks.
// Registration is idempotent: asking a Registry for an already-registered
// family with the same signature returns the existing one, so independent
// subsystems (and repeated jobs on a long-lived service) can share handles
// without coordination.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ContentType is the Prometheus text exposition content type served by
// Registry.Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Kind classifies a metric family.
type Kind string

// The metric kinds understood by the registry and by CheckName.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

var (
	nameRE  = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)
	labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// histogramUnits are the unit suffixes a histogram name may end in. The
// convention keeps exposition self-describing: a scraper knows
// wire_call_seconds is in seconds without reading the source.
var histogramUnits = []string{"_seconds", "_bytes", "_cells", "_ratio"}

// CheckName validates a metric family name against the repo-wide
// subsystem_name_unit convention: lowercase snake_case with at least one
// underscore (the leading segment is the subsystem), counters ending in
// _total, gauges not ending in _total, histograms ending in a recognised
// unit suffix. cmd/metriclint applies the same check statically to every
// metric-name literal in the tree.
func CheckName(kind Kind, name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("metric name %q is not subsystem_name_unit lowercase snake_case", name)
	}
	switch kind {
	case KindCounter:
		if !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("counter %q must end in _total", name)
		}
	case KindGauge:
		if strings.HasSuffix(name, "_total") {
			return fmt.Errorf("gauge %q must not end in _total", name)
		}
	case KindHistogram:
		ok := false
		for _, u := range histogramUnits {
			if strings.HasSuffix(name, u) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("histogram %q must end in a unit suffix (%s)", name, strings.Join(histogramUnits, ", "))
		}
	default:
		return fmt.Errorf("unknown metric kind %q", kind)
	}
	return nil
}

// value is a float64 updated atomically through its bit pattern.
type value struct{ bits atomic.Uint64 }

func (v *value) add(d float64) {
	for {
		old := v.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if v.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (v *value) set(x float64) { v.bits.Store(math.Float64bits(x)) }
func (v *value) get() float64  { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing float64.
type Counter struct{ v value }

// Inc adds 1.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds d; negative deltas are a programmer error and panic.
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: counter decreased by %v", d))
	}
	c.v.add(d)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.get() }

// Gauge is an arbitrarily settable float64.
type Gauge struct{ v value }

// Set replaces the value.
func (g *Gauge) Set(x float64) { g.v.set(x) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d float64) { g.v.add(d) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.get() }

// Histogram counts observations into fixed buckets (upper bounds,
// inclusive, ascending) plus an implicit +Inf bucket, and tracks the sum of
// all observed values — the shape Prometheus latency and size distributions
// use. Individual fields are updated atomically; a concurrent render may
// see a count without its sum, which scrapers tolerate by design.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is +Inf
	sum    value
	n      atomic.Uint64
}

// NewHistogram builds a histogram over the given bucket upper bounds, which
// must be finite and strictly ascending.
func NewHistogram(buckets []float64) *Histogram {
	checkBuckets(buckets)
	return &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

func checkBuckets(buckets []float64) {
	if len(buckets) == 0 {
		panic("metrics: histogram needs at least one bucket")
	}
	for i, b := range buckets {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic("metrics: histogram buckets must be finite (+Inf is implicit)")
		}
		if i > 0 && buckets[i-1] >= b {
			panic("metrics: histogram buckets must be strictly ascending")
		}
	}
}

// Observe records one value.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.upper, x) // first bucket with upper >= x (le semantics)
	h.counts[i].Add(1)
	h.sum.add(x)
	h.n.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.get() }

// Buckets returns the configured upper bounds (without the implicit +Inf).
func (h *Histogram) Buckets() []float64 { return append([]float64(nil), h.upper...) }

// BucketCounts returns the per-bucket (non-cumulative) observation counts;
// the final element is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// DefBuckets is a general-purpose latency bucket layout in seconds.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// ExponentialBuckets returns count buckets starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("metrics: ExponentialBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns count buckets starting at start, spaced width apart.
func LinearBuckets(start, width float64, count int) []float64 {
	if width <= 0 || count < 1 {
		panic("metrics: LinearBuckets needs width > 0, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// Registry is a set of named metric families. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64

	mu       sync.Mutex
	children map[string]*child
}

type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

func (r *Registry) family(kind Kind, name, help string, buckets []float64, labels []string) *family {
	if err := CheckName(kind, name); err != nil {
		panic("metrics: " + err.Error())
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, name))
		}
	}
	if kind == KindHistogram {
		checkBuckets(buckets)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("metrics: %s re-registered as %s%v (was %s%v)", name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: map[string]*child{},
	}
	r.byName[name] = f
	return f
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s takes %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{values: append([]string(nil), values...)}
		switch f.kind {
		case KindCounter:
			c.c = &Counter{}
		case KindGauge:
			c.g = &Gauge{}
		case KindHistogram:
			c.h = NewHistogram(f.buckets)
		}
		f.children[key] = c
	}
	return c
}

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or returns) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(KindCounter, name, help, nil, labels)}
}

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or returns) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(KindGauge, name, help, nil, labels)}
}

// Histogram registers (or returns) an unlabelled histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec registers (or returns) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(KindHistogram, name, help, buckets, labels)}
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first use).
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).c }

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).g }

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values (created on first use).
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).h }

// sorted returns the families in name order.
func (r *Registry) sorted() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.byName))
	for _, f := range r.byName {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*child, len(keys))
	for i, k := range keys {
		out[i] = f.children[k]
	}
	return out
}

// errWriter remembers the first write error so rendering loops stay flat.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4): # HELP and # TYPE headers, one line per sample,
// histograms as cumulative le-labelled _bucket series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ew := &errWriter{w: w}
	for _, f := range r.sorted() {
		fmt.Fprintf(ew, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(ew, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range f.sortedChildren() {
			base := labelString(f.labels, c.values, "", "")
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(ew, "%s%s %s\n", f.name, base, fmtFloat(c.c.Value()))
			case KindGauge:
				fmt.Fprintf(ew, "%s%s %s\n", f.name, base, fmtFloat(c.g.Value()))
			case KindHistogram:
				counts := c.h.BucketCounts()
				var cum uint64
				for i, ub := range f.buckets {
					cum += counts[i]
					fmt.Fprintf(ew, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.values, "le", fmtFloat(ub)), cum)
				}
				cum += counts[len(f.buckets)]
				fmt.Fprintf(ew, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.values, "le", "+Inf"), cum)
				fmt.Fprintf(ew, "%s_sum%s %s\n", f.name, base, fmtFloat(c.h.Sum()))
				fmt.Fprintf(ew, "%s_count%s %d\n", f.name, base, c.h.Count())
			}
		}
	}
	return ew.err
}

// Handler serves the Prometheus text exposition (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

// jsonBucket is one cumulative histogram bucket in the varz view.
type jsonBucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// jsonMetric is one sample (one label combination) in the varz view.
type jsonMetric struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Buckets []jsonBucket      `json:"buckets,omitempty"`
}

// jsonFamily is one metric family in the varz view.
type jsonFamily struct {
	Type    string       `json:"type"`
	Help    string       `json:"help"`
	Metrics []jsonMetric `json:"metrics"`
}

// WriteJSON renders the registry as an indented JSON object keyed by family
// name — the human-friendly /varz debug view.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := map[string]jsonFamily{}
	for _, f := range r.sorted() {
		jf := jsonFamily{Type: string(f.kind), Help: f.help, Metrics: []jsonMetric{}}
		for _, c := range f.sortedChildren() {
			m := jsonMetric{}
			if len(f.labels) > 0 {
				m.Labels = map[string]string{}
				for i, l := range f.labels {
					m.Labels[l] = c.values[i]
				}
			}
			switch f.kind {
			case KindCounter:
				v := c.c.Value()
				m.Value = &v
			case KindGauge:
				v := c.g.Value()
				m.Value = &v
			case KindHistogram:
				n := c.h.Count()
				s := c.h.Sum()
				m.Count = &n
				m.Sum = &s
				counts := c.h.BucketCounts()
				var cum uint64
				for i, ub := range f.buckets {
					cum += counts[i]
					m.Buckets = append(m.Buckets, jsonBucket{LE: fmtFloat(ub), Count: cum})
				}
				cum += counts[len(f.buckets)]
				m.Buckets = append(m.Buckets, jsonBucket{LE: "+Inf", Count: cum})
			}
			jf.Metrics = append(jf.Metrics, m)
		}
		out[f.name] = jf
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// VarzHandler serves the JSON debug view (GET /varz).
func (r *Registry) VarzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// labelString renders {a="x",b="y"} (plus an optional extra pair, used for
// le) or "" when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
