package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/metrics"
)

// RetryAfterFor's depth mapping is part of the HTTP contract (clients obey
// Retry-After); pin it exactly.
func TestRetryAfterForMapping(t *testing.T) {
	base := 2 * time.Second
	cases := []struct {
		depth, executors int
		want             time.Duration
	}{
		{0, 2, 2 * time.Second},
		{4, 2, 4 * time.Second},
		{64, 2, 34 * time.Second},
		{240, 2, 60 * time.Second}, // capped at MaxRetryAfter
		{10, 0, 12 * time.Second},  // executors clamps to 1
		{-5, 2, 2 * time.Second},   // negative depth clamps to 0
	}
	for _, c := range cases {
		if got := RetryAfterFor(base, c.depth, c.executors); got != c.want {
			t.Errorf("RetryAfterFor(2s, %d, %d) = %v, want %v", c.depth, c.executors, got, c.want)
		}
	}
	// Zero base falls back to the default hint.
	if got := RetryAfterFor(0, 0, 1); got != DefaultRetryAfter {
		t.Errorf("RetryAfterFor(0, 0, 1) = %v, want %v", got, DefaultRetryAfter)
	}
}

func tjob(id, tenant string, prio, queries int, residues int64) *job {
	return &job{Job: Job{ID: id, Request: Request{
		Tenant: tenant, Priority: prio, Queries: queries, Residues: residues,
	}}}
}

// Equal-weight WFQ alternates between a heavy and a light tenant instead of
// draining the heavy tenant's backlog first.
func TestWFQDequeueAlternates(t *testing.T) {
	book := NewTenantBook(TenantWFQ, nil, TenantConfig{})
	q := newQueue(0, book)
	for i := 0; i < 4; i++ {
		q.push(tjob(fmt.Sprintf("a%d", i), "alice", 0, 1, 100))
	}
	for i := 0; i < 2; i++ {
		q.push(tjob(fmt.Sprintf("b%d", i), "bob", 0, 1, 100))
	}
	if got, want := fmt.Sprint(popOrder(q)), "[a0 b0 a1 b1 a2 a3]"; got != want {
		t.Fatalf("pop order %s, want %s", got, want)
	}
}

// A weight-2 tenant is charged half per dequeue and receives twice the
// service of a weight-1 tenant with the same demand.
func TestWFQWeightsSkewService(t *testing.T) {
	cfg := map[string]TenantConfig{"alice": {Weight: 2}}
	book := NewTenantBook(TenantWFQ, cfg, TenantConfig{})
	q := newQueue(0, book)
	for i := 0; i < 4; i++ {
		q.push(tjob(fmt.Sprintf("a%d", i), "alice", 0, 1, 100))
		q.push(tjob(fmt.Sprintf("b%d", i), "bob", 0, 1, 100))
	}
	var first6 []string
	for i := 0; i < 6; i++ {
		first6 = append(first6, q.pop().ID)
	}
	na := 0
	for _, id := range first6 {
		if id[0] == 'a' {
			na++
		}
	}
	if na != 4 {
		t.Fatalf("weight-2 tenant got %d of first 6 pops (%v), want 4", na, first6)
	}
}

// DRF charges each request by its dominant dimension: a many-queries tenant
// and a many-residues tenant with equal dominant shares alternate.
func TestDRFChargesDominantDimension(t *testing.T) {
	book := NewTenantBook(TenantDRF, nil, TenantConfig{})
	q := newQueue(0, book)
	for i := 0; i < 3; i++ {
		// alice: residue-heavy (2 in residue share, negligible in queries).
		q.push(tjob(fmt.Sprintf("a%d", i), "alice", 0, 1, 2*DRFRefResidues))
		// bob: query-heavy (2 in query share, negligible in residues).
		q.push(tjob(fmt.Sprintf("b%d", i), "bob", 0, 2*DRFRefQueries, 16))
	}
	if got, want := fmt.Sprint(popOrder(q)), "[a0 b0 a1 b1 a2 b2]"; got != want {
		t.Fatalf("pop order %s, want %s", got, want)
	}
}

// With a single tenant, WFQ degenerates to the legacy priority FIFO.
func TestWFQSingleTenantMatchesFIFO(t *testing.T) {
	book := NewTenantBook(TenantWFQ, nil, TenantConfig{})
	q := newQueue(0, book)
	for _, j := range []*job{
		tjob("a", "x", 0, 1, 10), tjob("b", "x", 1, 1, 10),
		tjob("c", "x", 0, 1, 10), tjob("d", "x", 1, 1, 10), tjob("e", "x", 2, 1, 10),
	} {
		q.push(j)
	}
	if got, want := fmt.Sprint(popOrder(q)), "[e b d a c]"; got != want {
		t.Fatalf("pop order %s, want %s", got, want)
	}
}

// An over-quota submission is rejected with the machine-readable reason the
// HTTP layer maps to 429, a depth-scaled Retry-After, and a per-tenant
// rejection count; other tenants are unaffected and the quota frees when
// the outstanding job finishes.
func TestTenantQuotaRejectsAndFrees(t *testing.T) {
	mm := NewMetrics(metrics.NewRegistry())
	release := make(chan struct{})
	m, err := New(Config{
		Executors:    1,
		Metrics:      mm,
		RetryAfter:   2 * time.Second,
		TenantPolicy: TenantDRF,
		Tenants:      map[string]TenantConfig{"alice": {MaxOutstanding: 1}},
		Run: func(ctx context.Context, r Request) ([]byte, error) {
			select {
			case <-release:
				return []byte("{}"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	sub := func(fasta, tenant string) (Job, error) {
		r := req(fasta)
		r.Tenant = tenant
		return m.Submit(r, true)
	}
	first, err := sub(">a\nMKVL", "alice")
	if err != nil {
		t.Fatal(err)
	}
	_, err = sub(">b\nAAAA", "alice")
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != "tenant_quota" {
		t.Fatalf("over-quota submit: err = %v, want tenant_quota rejection", err)
	}
	if rej.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want the 2s base at an empty queue", rej.RetryAfter)
	}
	if got := mm.TenantRejected.With("alice").Value(); got != 1 {
		t.Fatalf("tenant_rejected_total{alice} = %v, want 1", got)
	}
	// Another tenant is not throttled by alice's quota.
	other, err := sub(">c\nCCCC", "bob")
	if err != nil {
		t.Fatalf("bob's submit rejected: %v", err)
	}

	close(release)
	waitState(t, m, first.ID, StateDone)
	waitState(t, m, other.ID, StateDone)

	// Quota is outstanding-based: it frees on completion.
	again, err := sub(">d\nDDDD", "alice")
	if err != nil {
		t.Fatalf("post-completion submit rejected: %v", err)
	}
	waitState(t, m, again.ID, StateDone)
	if got := mm.TenantQueued.With("alice").Value(); got != 0 {
		t.Fatalf("tenant_queued_jobs{alice} = %v after drain, want 0", got)
	}
	if got := mm.TenantRunning.With("alice").Value(); got != 0 {
		t.Fatalf("tenant_running_jobs{alice} = %v after drain, want 0", got)
	}
	if got := mm.TenantServed.With("alice").Value(); got == 0 {
		t.Fatal("tenant_served_residues_total{alice} stayed 0 after two served jobs")
	}
}

// The residue quota rejects a single request that would exceed it.
func TestTenantResidueQuota(t *testing.T) {
	m, err := New(Config{
		Executors:      1,
		TenantDefaults: TenantConfig{MaxOutstandingResidues: 100},
		Run:            func(context.Context, Request) ([]byte, error) { return []byte("{}"), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	big := Request{QueriesFasta: ">q\nM", Queries: 1, Residues: 101, Tenant: "eve"}
	_, err = m.Submit(big, true)
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != "tenant_quota" {
		t.Fatalf("err = %v, want tenant_quota", err)
	}
}

// Recovery rebuilds tenant accounting from the WAL: a queued job recovered
// with a tenant lands in that tenant's book, not the anonymous bucket.
func TestRecoveryPreservesTenancy(t *testing.T) {
	dir := t.TempDir()
	rec := Job{
		ID:      "j-tenant",
		Key:     "ktenant",
		State:   StateQueued,
		Request: Request{QueriesFasta: ">q\nMKVL", Queries: 1, Residues: 4, Tenant: "alice"},
		Created: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC),
	}
	line, err := MarshalRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName), line, 0o644); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	m, err := New(Config{
		Executors:    1,
		Dir:          dir,
		TenantPolicy: TenantWFQ,
		Run: func(ctx context.Context, r Request) ([]byte, error) {
			select {
			case <-release:
				return []byte("{}"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	waitState(t, m, "j-tenant", StateRunning)
	m.mu.Lock()
	running := m.book.Running("alice")
	check := m.book.Check()
	m.mu.Unlock()
	if running != 1 {
		t.Fatalf("recovered tenant running = %d, want 1", running)
	}
	if check != nil {
		t.Fatalf("book audit after recovery: %v", check)
	}
	close(release)
	j := waitState(t, m, "j-tenant", StateDone)
	if j.Request.Tenant != "alice" {
		t.Fatalf("recovered job lost its tenant: %+v", j.Request)
	}
}

// driveFairQueue runs a randomized interleaving of push/pop/remove/finish
// against the fair queue and its book, checking after every step that (a)
// quota accounting never goes negative, (b) pops respect each tenant's
// priority-then-FIFO order, (c) no job is duplicated or lost, and (d) the
// book's queued counts agree with a shadow model.
func driveFairQueue(t testing.TB, seed int64, policy TenantPolicy) {
	rng := rand.New(rand.NewSource(seed))
	tenants := []string{"", "alice", "bob", "carol"}
	cfg := map[string]TenantConfig{
		"alice": {Weight: 2},
		"bob":   {MaxOutstanding: 8},
		"carol": {MaxOutstandingResidues: 1 << 20},
	}
	book := NewTenantBook(policy, cfg, TenantConfig{})
	q := newQueue(16, book)
	model := map[string][]*job{} // expected within-tenant pop order
	queued := map[*job]bool{}
	var running []*job
	popped := map[string]bool{}
	next := 0
	lastVclock := -1.0

	step := func(op int) {
		switch k := rng.Intn(10); {
		case k < 5: // push
			tn := tenants[rng.Intn(len(tenants))]
			j := tjob(fmt.Sprintf("j%d", next), tn, rng.Intn(4), 1+rng.Intn(100), int64(1+rng.Intn(1<<20)))
			next++
			if rej := book.Admit(tn, j.Request.Residues); rej != nil {
				return
			}
			if !q.push(j) {
				return // global bound
			}
			items := model[tn]
			i := len(items)
			for i > 0 && items[i-1].Request.Priority < j.Request.Priority {
				i--
			}
			items = append(items, nil)
			copy(items[i+1:], items[i:])
			items[i] = j
			model[tn] = items
			queued[j] = true
		case k < 8: // pop
			j := q.pop()
			if j == nil {
				if q.len() != 0 {
					t.Fatalf("seed %d op %d: empty pop but len=%d", seed, op, q.len())
				}
				return
			}
			tn := j.Request.Tenant
			if len(model[tn]) == 0 || model[tn][0] != j {
				t.Fatalf("seed %d op %d: pop %s violated tenant %q priority/FIFO order", seed, op, j.ID, tn)
			}
			model[tn] = model[tn][1:]
			if popped[j.ID] {
				t.Fatalf("seed %d op %d: job %s popped twice", seed, op, j.ID)
			}
			popped[j.ID] = true
			delete(queued, j)
			running = append(running, j)
		case k < 9: // finish a running job
			if len(running) == 0 {
				return
			}
			i := rng.Intn(len(running))
			j := running[i]
			running = append(running[:i], running[i+1:]...)
			book.Finish(j.Request.Tenant, j.Request.Residues, rng.Intn(2) == 0)
		default: // cancel a random queued job
			var cand []*job
			for j := range queued {
				cand = append(cand, j)
			}
			if len(cand) == 0 {
				return
			}
			sort.Slice(cand, func(a, b int) bool { return cand[a].ID < cand[b].ID })
			j := cand[rng.Intn(len(cand))]
			if !q.remove(j) {
				t.Fatalf("seed %d op %d: remove of queued %s failed", seed, op, j.ID)
			}
			delete(queued, j)
			items := model[j.Request.Tenant]
			for i, it := range items {
				if it == j {
					model[j.Request.Tenant] = append(items[:i], items[i+1:]...)
					break
				}
			}
		}
	}
	for op := 0; op < 400; op++ {
		step(op)
		if err := book.Check(); err != nil {
			t.Fatalf("seed %d op %d: %v", seed, op, err)
		}
		for _, tn := range tenants {
			if got, want := book.Queued(tn), len(model[tn]); got != want {
				t.Fatalf("seed %d op %d: book.Queued(%q)=%d, model=%d", seed, op, tn, got, want)
			}
			if p := book.Pass(tn); p < 0 {
				t.Fatalf("seed %d op %d: negative pass for %q", seed, op, tn)
			}
		}
		if book.vclock < lastVclock {
			t.Fatalf("seed %d op %d: vclock went backwards (%v -> %v)", seed, op, lastVclock, book.vclock)
		}
		lastVclock = book.vclock
	}
	// Drain: everything still queued pops exactly once, nothing is lost.
	for j := q.pop(); j != nil; j = q.pop() {
		tn := j.Request.Tenant
		if len(model[tn]) == 0 || model[tn][0] != j {
			t.Fatalf("seed %d drain: pop %s out of order for %q", seed, j.ID, tn)
		}
		model[tn] = model[tn][1:]
		if popped[j.ID] {
			t.Fatalf("seed %d drain: job %s popped twice", seed, j.ID)
		}
		popped[j.ID] = true
	}
	for tn, items := range model {
		if len(items) != 0 {
			t.Fatalf("seed %d: tenant %q lost %d queued jobs", seed, tn, len(items))
		}
	}
	if q.len() != 0 {
		t.Fatalf("seed %d: queue reports %d after drain", seed, q.len())
	}
}

// TestFairQueueProperty sweeps the randomized interleaving across a pinned
// seed matrix for every policy.
func TestFairQueueProperty(t *testing.T) {
	for _, policy := range []TenantPolicy{TenantFIFO, TenantWFQ, TenantDRF} {
		for seed := int64(1); seed <= 20; seed++ {
			driveFairQueue(t, seed, policy)
		}
	}
}

// FuzzFairQueue lets the fuzzer hunt for interleavings the pinned matrix
// misses; the corpus seeds mirror the property test.
func FuzzFairQueue(f *testing.F) {
	f.Add(int64(1), byte(0))
	f.Add(int64(2), byte(1))
	f.Add(int64(3), byte(2))
	f.Fuzz(func(t *testing.T, seed int64, policyByte byte) {
		driveFairQueue(t, seed, TenantPolicy(policyByte%3))
	})
}
