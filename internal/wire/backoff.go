package wire

import (
	"math/rand"
	"time"
)

// Backoff computes truncated exponential backoff with jitter for retrying
// transient transport failures (re-dialing a restarted master, riding out
// a brief partition). Attempt k sleeps Base·2^k, capped at Cap, with a
// uniform ±Jitter fraction applied so a fleet of slaves reconnecting after
// a master restart does not stampede in lockstep.
type Backoff struct {
	Base   time.Duration // first delay; <=0 means DefaultBackoff.Base
	Cap    time.Duration // upper bound on any delay; <=0 means DefaultBackoff.Cap
	Jitter float64       // relative half-width in [0,1); <=0 means DefaultBackoff.Jitter
}

// DefaultBackoff is the retry schedule used when a Backoff field is left
// zero: 100ms, 200ms, 400ms, ... capped at 5s, each ±20%.
var DefaultBackoff = Backoff{Base: 100 * time.Millisecond, Cap: 5 * time.Second, Jitter: 0.2}

// fill resolves zero fields to the defaults.
func (b Backoff) fill() Backoff {
	if b.Base <= 0 {
		b.Base = DefaultBackoff.Base
	}
	if b.Cap <= 0 {
		b.Cap = DefaultBackoff.Cap
	}
	if b.Jitter <= 0 {
		b.Jitter = DefaultBackoff.Jitter
	}
	return b
}

// Delay returns the sleep before retry number attempt (0-based). rng may
// be nil for an unjittered schedule (useful in tests).
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	b = b.fill()
	d := b.Base
	for i := 0; i < attempt && d < b.Cap; i++ {
		d *= 2
	}
	if d > b.Cap {
		d = b.Cap
	}
	if rng != nil && b.Jitter > 0 {
		d += time.Duration(float64(d) * b.Jitter * (2*rng.Float64() - 1))
	}
	return d
}
