// Package benchfmt parses the text output of `go test -bench` into
// structured records, so benchmark runs can be archived as JSON
// (cmd/benchjson, `make bench`) and compared across commits without
// scraping.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (BenchmarkKernelFarrar-8 → KernelFarrar; the Benchmark prefix is
	// dropped too).
	Name string `json:"name"`
	// Pkg is the import path from the most recent "pkg:" header line.
	Pkg string `json:"pkg,omitempty"`
	// Procs is GOMAXPROCS at run time (the -N suffix; 1 when absent).
	Procs int `json:"procs"`
	// Iters is the measured iteration count (b.N).
	Iters int64 `json:"iters"`
	// NsPerOp is the core measurement.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp come from -benchmem; -1 when absent.
	BytesPerOp  int64 `json:"b_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Custom holds any further "value unit" pairs (b.ReportMetric and
	// b.SetBytes output, e.g. "MB/s", "GCUPS").
	Custom map[string]float64 `json:"custom,omitempty"`
}

// Set is a whole `go test -bench` run.
type Set struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"benchmarks"`
}

// Parse reads `go test -bench` output. Unrecognised lines (PASS, ok,
// test logs) are skipped; malformed Benchmark lines are an error.
func Parse(r io.Reader) (*Set, error) {
	s := &Set{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			s.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			s.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			s.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: %w", err)
			}
			res.Pkg = pkg
			s.Results = append(s.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return s, nil
}

func parseLine(line string) (Result, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Result{}, fmt.Errorf("malformed line %q", line)
	}
	res := Result{Procs: 1, BytesPerOp: -1, AllocsPerOp: -1, NsPerOp: -1}
	res.Name = strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if n, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Procs = n
			res.Name = res.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations in %q: %v", line, err)
	}
	res.Iters = iters
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("value %q in %q: %v", f[i], line, err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		default:
			if res.Custom == nil {
				res.Custom = map[string]float64{}
			}
			res.Custom[unit] = v
		}
	}
	if res.NsPerOp < 0 {
		return Result{}, fmt.Errorf("no ns/op in %q", line)
	}
	return res, nil
}
