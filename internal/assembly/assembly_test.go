package assembly

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/score"
	"repro/internal/seq"
)

func dnaScheme() score.Scheme {
	return score.Scheme{Matrix: score.NewMatchMismatch(seq.DNA, 2, -3), Gap: score.AffineGap(5, 2)}
}

func randDNA(rng *rand.Rand, n int) []byte {
	letters := []byte("ATGC")
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(4)]
	}
	return out
}

// shred cuts a genome into overlapping reads covering it completely.
func shred(genome []byte, readLen, step int) []*seq.Sequence {
	var reads []*seq.Sequence
	for start := 0; ; start += step {
		end := start + readLen
		if end > len(genome) {
			end = len(genome)
		}
		reads = append(reads, seq.New("r", "", genome[start:end]))
		if end == len(genome) {
			break
		}
	}
	return reads
}

func TestOverlapScoreExact(t *testing.T) {
	s := dnaScheme()
	a := []byte("AAAATTTTGGGG")
	b := []byte("TTTTGGGGCCCC")
	o := OverlapScore(a, b, s)
	// Suffix TTTTGGGG (8) matches prefix exactly: 8 matches * 2.
	if o.Score != 16 || o.LenA != 8 || o.LenB != 8 {
		t.Fatalf("overlap = %+v, want score 16 len 8/8", o)
	}
}

func TestOverlapScoreNoOverlap(t *testing.T) {
	s := dnaScheme()
	o := OverlapScore([]byte("AAAAAAA"), []byte("GGGGGGG"), s)
	if o.Score > 2 { // at best a trivial 1-base fluke; must not fake overlaps
		t.Fatalf("unrelated reads overlap = %+v", o)
	}
	if got := OverlapScore(nil, []byte("AC"), s); got.Score != 0 {
		t.Errorf("empty a overlap = %+v", got)
	}
}

func TestOverlapScoreWithGap(t *testing.T) {
	s := dnaScheme()
	// Suffix of a and prefix of b match except b lost one base.
	a := []byte("CCCCATGATGATG")
	b := []byte("ATGATATGCCCC") // ATGAT-ATG with the G deleted
	o := OverlapScore(a, b, s)
	if o.Score <= 0 {
		t.Fatalf("gapped overlap not found: %+v", o)
	}
	if o.LenA < 8 || o.LenB < 8 {
		t.Fatalf("gapped overlap extents too small: %+v", o)
	}
}

func TestAssemblePerfectReads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	genome := randDNA(rng, 1200)
	reads := shred(genome, 150, 100) // 50 bp overlaps
	// Shuffle so assembly cannot rely on input order.
	rng.Shuffle(len(reads), func(i, j int) { reads[i], reads[j] = reads[j], reads[i] })

	contigs, err := Assemble(reads, Options{MinOverlap: 30, MinScore: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 1 {
		lens := []int{}
		for _, c := range contigs {
			lens = append(lens, len(c.Residues))
		}
		t.Fatalf("%d contigs (lengths %v), want 1", len(contigs), lens)
	}
	if !bytes.Equal(contigs[0].Residues, genome) {
		t.Fatalf("assembled contig (%d bp) != genome (%d bp)", len(contigs[0].Residues), len(genome))
	}
	if len(contigs[0].Reads) != len(reads) {
		t.Errorf("contig used %d of %d reads", len(contigs[0].Reads), len(reads))
	}
}

func TestAssembleTwoChromosomes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	chr1 := randDNA(rng, 700)
	chr2 := randDNA(rng, 500)
	reads := append(shred(chr1, 120, 80), shred(chr2, 120, 80)...)
	rng.Shuffle(len(reads), func(i, j int) { reads[i], reads[j] = reads[j], reads[i] })
	contigs, err := Assemble(reads, Options{MinOverlap: 30, MinScore: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 2 {
		t.Fatalf("%d contigs, want 2", len(contigs))
	}
	got := map[int]bool{len(contigs[0].Residues): true, len(contigs[1].Residues): true}
	if !got[700] || !got[500] {
		t.Fatalf("contig lengths %d/%d, want 700/500", len(contigs[0].Residues), len(contigs[1].Residues))
	}
}

func TestAssembleNoisyReads(t *testing.T) {
	// 1% substitution noise: contigs should still be few and long, though
	// not necessarily perfect.
	rng := rand.New(rand.NewSource(3))
	genome := randDNA(rng, 1000)
	var reads []*seq.Sequence
	letters := []byte("ATGC")
	for _, r := range shred(genome, 160, 110) {
		res := append([]byte{}, r.Residues...)
		for i := range res {
			if rng.Float64() < 0.01 {
				res[i] = letters[rng.Intn(4)]
			}
		}
		reads = append(reads, seq.New("r", "", res))
	}
	contigs, err := Assemble(reads, Options{MinOverlap: 30, MinScore: 40})
	if err != nil {
		t.Fatal(err)
	}
	if n50 := N50(contigs); n50 < 500 {
		t.Errorf("noisy assembly N50 = %d, want >= 500", n50)
	}
}

func TestAssembleRejectsEmpty(t *testing.T) {
	if _, err := Assemble(nil, Options{}); err == nil {
		t.Error("no reads accepted")
	}
}

func TestAssembleSingleRead(t *testing.T) {
	reads := []*seq.Sequence{seq.New("r", "", []byte("ATGCATGC"))}
	contigs, err := Assemble(reads, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 1 || string(contigs[0].Residues) != "ATGCATGC" {
		t.Fatalf("contigs = %+v", contigs)
	}
}

func TestAssembleFromDatasetGenerator(t *testing.T) {
	// End-to-end with the synthetic DNA generator.
	db := dataset.GenerateDNA(dataset.DNAProfile{
		Name: "genome", NumSeqs: 1, MeanLen: 900, SigmaLn: 0.01, MinLen: 800, MaxLen: 1000,
	}, 9)
	genome := db[0].Residues
	reads := shred(genome, 140, 90)
	contigs, err := Assemble(reads, Options{MinOverlap: 30, MinScore: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 1 || !bytes.Equal(contigs[0].Residues, genome) {
		t.Fatalf("failed to reassemble synthetic genome: %d contigs", len(contigs))
	}
}

func TestN50(t *testing.T) {
	contigs := []Contig{
		{Residues: make([]byte, 100)},
		{Residues: make([]byte, 60)},
		{Residues: make([]byte, 40)},
	}
	// total 200; 100 covers half.
	if got := N50(contigs); got != 100 {
		t.Errorf("N50 = %d, want 100", got)
	}
	if got := N50(nil); got != 0 {
		t.Errorf("N50(nil) = %d", got)
	}
}
