package platform

import (
	"testing"
	"time"

	"repro/internal/sched"
)

// TestHungPELeaseRescues mirrors the wall-clock master's hung-slave test in
// virtual time: a PE wedges mid-task without telling anyone, the adjustment
// mechanism is off, and only the lease-driven Expire can requeue its task.
func TestHungPELeaseRescues(t *testing.T) {
	hung := &PE{Name: "hung", CellsPerSec: 10, HangAt: 5 * time.Second}
	survivor := &PE{Name: "survivor", CellsPerSec: 10}
	res, err := Run(Experiment{
		Tasks:       churnTasks(8, 100), // 10 s per task per PE
		PEs:         []*PE{hung, survivor},
		Policy:      sched.SS{},
		Adjust:      false,
		NotifyEvery: time.Second,
		Lease:       3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The survivor carries everything; the hung PE's task comes back after
	// ~lease and the whole job lands around 80 s, not at all.
	if res.Makespan < 70*time.Second || res.Makespan > 100*time.Second {
		t.Errorf("makespan = %v, want ~80s on the survivor", res.Makespan)
	}
	if res.PerPE[1].TasksWon != 8 {
		t.Errorf("survivor won %d tasks, want all 8", res.PerPE[1].TasksWon)
	}
	if res.PerPE[0].TasksWon != 0 {
		t.Errorf("hung PE won %d tasks, want 0", res.PerPE[0].TasksWon)
	}
}

// TestHungPEWithoutLeaseStalls is the control: same wedge, no lease, no
// adjustment — the job cannot finish and Run must say so instead of
// spinning forever.
func TestHungPEWithoutLeaseStalls(t *testing.T) {
	hung := &PE{Name: "hung", CellsPerSec: 10, HangAt: 5 * time.Second}
	survivor := &PE{Name: "survivor", CellsPerSec: 10}
	_, err := Run(Experiment{
		Tasks:       churnTasks(8, 100),
		PEs:         []*PE{hung, survivor},
		Policy:      sched.SS{},
		Adjust:      false,
		NotifyEvery: time.Second,
		MaxEvents:   100_000, // the idle survivor polls forever; cut it short
	})
	if err == nil {
		t.Fatal("job with a wedged PE and no lease finished; it must stall")
	}
}

func TestHangBeforeJoinRejected(t *testing.T) {
	bad := &PE{Name: "x", CellsPerSec: 1, JoinAt: 10 * time.Second, HangAt: 5 * time.Second}
	if err := bad.Validate(); err == nil {
		t.Error("HangAt before JoinAt accepted")
	}
}
