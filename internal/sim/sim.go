package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/autoscale"
	"repro/internal/jobs"
	"repro/internal/master"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/seq"
	"repro/internal/vtime"
	"repro/internal/wire"
)

// Report is the outcome of one simulated run. Violations is the invariant
// library's verdict: empty means every invariant held.
type Report struct {
	Name        string        `json:"name,omitempty"`
	Seed        int64         `json:"seed"`
	Done        bool          `json:"done"`
	Makespan    time.Duration `json:"makespan_ns"`
	EventsFired uint64        `json:"events_fired"`
	Restarts    int           `json:"restarts"`
	Expired     int           `json:"expired"`
	Replicas    int           `json:"replicas"`
	Faults      int           `json:"faults"`
	// Multi-tenancy counters: arrivals admitted through the front door,
	// arrivals turned away by quota, preemption events, and elastic-pool
	// scale actions.
	Arrivals    int      `json:"arrivals,omitempty"`
	Rejected    int      `json:"rejected,omitempty"`
	Preempts    int      `json:"preempts,omitempty"`
	ScaleEvents int      `json:"scale_events,omitempty"`
	Violations  []string `json:"violations,omitempty"`
	// Fingerprint hashes the structured event log, the final results and
	// the final jobs WAL: two runs of the same scenario+seed must agree
	// byte for byte.
	Fingerprint string `json:"fingerprint"`

	Results  []master.QueryResult `json:"-"`
	EventLog []byte               `json:"-"`
}

// Run executes one scenario to quiescence and checks every invariant. It
// returns an error only for invalid scenarios; invariant failures land in
// Report.Violations so soak drivers can keep going and shrink later.
func Run(sc Scenario) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sc = sc.fill()
	r := newRun(sc)
	r.start()
	fired, err := r.sim.Run(sc.MaxEvents)
	if err != nil {
		r.violatef("quiescence: %v", err)
	}
	return r.report(fired), nil
}

// incarnation identifies one lifetime of a slave machine: epoch bumps on
// every crash, hang or rebirth, invalidating the old lifetime's in-flight
// events and its claim on a registered slave ID.
type incarnation struct {
	m     *machine
	epoch int
}

// run is the whole simulated cluster: the event loop, the master side
// (protocol core + durable state), the virtual network and the invariant
// trackers.
type run struct {
	sc  Scenario
	sim *vtime.Simulator

	// Master side. core is nil while the master is down.
	core       *master.Core
	queries    []*seq.Sequence
	events     *metrics.EventLog
	eventBuf   bytes.Buffer
	checkpoint []byte // gob-encoded sched.Snapshot, saved on every accepted completion
	downUntil  time.Duration
	jobDone    bool // latched: once true the lease ticker stops rescheduling

	// Jobs ledger: the durable job queue composed with the cluster. One
	// job record per task, WAL-appended on every transition, torn at
	// master crashes, replayed + reconciled at restores.
	wal     bytes.Buffer
	tearRNG *rand.Rand

	machines []*machine

	// Invariant trackers.
	owner         map[sched.SlaveID]incarnation   // who holds each registered ID
	lastDelivered map[sched.SlaveID]time.Duration // last message the core actually received per live ID
	lastContact   map[sched.SlaveID]time.Duration // coordinator's view, sampled for monotonicity
	violations    []string

	restarts int
	expired  int
	faults   int

	// Multi-tenant front door (nil-safe: empty when the scenario has no
	// Tenants). seedQueries is the length of the seed query list; arrivals
	// grow r.queries past it, and restores split on this boundary.
	seedQueries      int
	book             *jobs.TenantBook
	arrivals         []*arrival
	taskMeta         map[sched.TaskID]*arrival
	deferred         []*arrival
	arrivalsLeft     int
	rejectedArrivals int
	fairTrace        []fairEvent
	preemptSeen      int
	preempts         int

	// Elastic pool.
	scaler  *autoscale.Controller
	autoSeq int
}

func newRun(sc Scenario) *run {
	r := &run{
		sc:            sc,
		sim:           vtime.New(),
		tearRNG:       rand.New(rand.NewSource(sc.Seed ^ 0x7ea57a11)),
		owner:         map[sched.SlaveID]incarnation{},
		lastDelivered: map[sched.SlaveID]time.Duration{},
		lastContact:   map[sched.SlaveID]time.Duration{},
	}
	r.events = metrics.NewEventLog(&r.eventBuf)
	r.queries = make([]*seq.Sequence, len(sc.TaskResidues))
	for i, n := range sc.TaskResidues {
		res := bytes.Repeat([]byte{'M'}, n)
		r.queries[i] = seq.New(fmt.Sprintf("q%03d", i), "", res)
	}
	r.seedQueries = len(r.queries)
	for i, spec := range sc.Slaves {
		r.machines = append(r.machines, newMachine(r, i, spec))
	}
	r.initTenants()
	return r
}

func (r *run) violatef(format string, args ...any) {
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

// schedConfig builds the coordinator config; policy construction cannot
// fail here because Validate already vetted the name.
func (r *run) schedConfig() sched.Config {
	cfg := sched.Config{
		Adjust:        r.sc.Adjust,
		Omega:         r.sc.Omega,
		Preempt:       r.sc.Preempt,
		PreemptFactor: r.sc.PreemptFactor,
	}
	if len(r.sc.Tenants) > 0 {
		cfg.Tenants = map[string]float64{}
		for _, t := range r.sc.Tenants {
			cfg.Tenants[t.Name] = t.Weight
		}
	}
	if r.sc.Policy != "" {
		p, err := sched.NewPolicy(r.sc.Policy)
		if err != nil {
			panic(err)
		}
		cfg.Policy = p
	}
	return cfg
}

// start boots the master, seeds the ledger with one queued job per task,
// schedules the fault timetable and brings up the slaves.
func (r *run) start() {
	core, err := master.NewCore(r.queries, r.sc.DBResidues, r.schedConfig(), r.events)
	if err != nil {
		panic(err) // Validate guarantees non-empty queries
	}
	r.core = core
	for tid := range r.queries {
		r.appendLedger(sched.TaskID(tid), jobs.StateQueued)
	}
	if r.sc.Lease > 0 {
		r.sim.After(r.sc.Lease/4, r.leaseTick)
	}
	for _, re := range r.sc.Restarts {
		re := re
		r.sim.Schedule(re.At, func() { r.crashMaster(re) })
	}
	for _, m := range r.machines {
		m.boot()
	}
	r.startTenants()
	r.startAutoscale()
}

// --- master lifecycle -------------------------------------------------

func (r *run) masterUp() bool { return r.core != nil }

// leaseTick drives the lease-based failure detector every lease/4, exactly
// like the wall-clock master's ticker, and cross-checks every expiry
// against the simulator's ground truth of message deliveries.
func (r *run) leaseTick() {
	now := r.sim.Now()
	if r.masterUp() && !r.jobDone {
		for _, id := range r.core.Expire(now, r.sc.Lease) {
			r.expired++
			r.checkExpiry(id, now)
		}
	}
	if !r.jobDone {
		r.sim.After(r.sc.Lease/4, r.leaseTick)
	}
}

// checkExpiry asserts the lease-safety invariant: an ID may only expire if
// its owning incarnation is gone (crashed, hung, or superseded) or the
// master genuinely heard nothing from it for a full lease.
func (r *run) checkExpiry(id sched.SlaveID, now time.Duration) {
	own, ok := r.owner[id]
	if !ok {
		return // registered before a restart; ID not owned in this incarnation
	}
	alive := own.m.epoch == own.epoch && !own.m.crashed && !own.m.wedged
	if !alive {
		return
	}
	if last, ok := r.lastDelivered[id]; ok && now-last <= r.sc.Lease {
		r.violatef("lease-safety: slave %s (id %d) expired at %v though the master heard it at %v (lease %v)",
			own.m.spec.Name, id, now, last, r.sc.Lease)
	}
}

// crashMaster takes the master down: the core is discarded (in-memory
// state lost; only the checkpoint and the WAL survive), the WAL tail may
// tear, and a restore is scheduled.
func (r *run) crashMaster(re MasterRestart) {
	if r.core == nil {
		return // overlapping restarts are rejected by Validate; be safe
	}
	r.restarts++
	r.core = nil
	r.downUntil = r.sim.Now() + re.DownFor
	if r.sc.TearWAL && r.wal.Len() > 0 {
		b := r.wal.Bytes()
		cut := r.tearRNG.Intn(minInt(len(b), 120))
		kept := append([]byte(nil), b[:len(b)-cut]...)
		r.wal.Reset()
		r.wal.Write(kept)
	}
	r.sim.After(re.DownFor, r.restoreMaster)
}

// restoreMaster boots a fresh master incarnation from the checkpoint and
// reconciles the replayed jobs ledger against it, exactly the repair a
// real boot performs.
func (r *run) restoreMaster() {
	r.downUntil = 0
	// Registrations are deliberately not checkpointed: every slave must
	// re-register, so prior IDs are meaningless to the new incarnation.
	r.owner = map[sched.SlaveID]incarnation{}
	r.lastDelivered = map[sched.SlaveID]time.Duration{}
	r.lastContact = map[sched.SlaveID]time.Duration{}
	// The new core's preemption log starts empty.
	r.preemptSeen = 0
	if r.checkpoint == nil {
		core, err := master.NewCore(r.queries[:r.seedQueries], r.sc.DBResidues, r.schedConfig(), r.events)
		if err != nil {
			panic(err)
		}
		r.core = core
		r.resubmitArrivals(r.seedQueries)
	} else {
		var snap sched.Snapshot
		if err := gob.NewDecoder(bytes.NewReader(r.checkpoint)).Decode(&snap); err != nil {
			r.violatef("restart: corrupt checkpoint: %v", err)
			return
		}
		// Arrivals admitted after the last synchronous checkpoint are not in
		// the snapshot; restore the checkpointed prefix, then replay them.
		known := len(snap.Tasks)
		core, err := master.RestoreCore(&snap, r.queries[:known], r.schedConfig(), r.events)
		if err != nil {
			r.violatef("restart: %v", err)
			return
		}
		r.core = core
		r.resubmitArrivals(known)
	}
	r.reconcileLedger()
	r.drainDeferred()
}

// reconcileLedger replays the jobs WAL and repairs it against the restored
// coordinator, the same boot-time repair the real store performs: the torn
// final line is truncated before anything is appended again (at most one
// record — the append in flight at the crash — can be lost, and it is
// re-logged from the checkpoint). A done record for a task the checkpoint
// does not consider finished would mean the WAL ran ahead of the
// synchronous checkpoint — an invariant violation.
func (r *run) reconcileLedger() {
	if clean := jobs.CleanLength(r.wal.Bytes()); clean != r.wal.Len() {
		r.wal.Truncate(clean)
	}
	recs, err := jobs.Replay(nil, r.wal.Bytes())
	if err != nil {
		r.violatef("restart: WAL replay: %v", err)
		return
	}
	pool := r.core.Coordinator().Pool()
	seen := map[string]jobs.State{}
	for _, rec := range recs {
		seen[rec.ID] = rec.State
	}
	if missing := len(r.queries) - len(seen); missing > 1 {
		// The torn tail can only ever swallow the single in-flight append.
		r.violatef("jobs-durability: replay recovered %d of %d job records (torn tail explains at most one)",
			len(seen), len(r.queries))
	}
	for tid := range r.queries {
		id := ledgerID(sched.TaskID(tid))
		state, ok := seen[id]
		finished := pool.StateOf(sched.TaskID(tid)) == sched.Finished
		switch {
		case !ok && finished:
			r.appendLedger(sched.TaskID(tid), jobs.StateDone)
		case !ok:
			r.appendLedger(sched.TaskID(tid), jobs.StateQueued)
		case state == jobs.StateDone && !finished:
			r.violatef("jobs-durability: job %s is done in the WAL but task %d is %v in the checkpoint",
				id, tid, pool.StateOf(sched.TaskID(tid)))
		case state != jobs.StateDone && finished:
			// The done record tore off; the checkpoint is authoritative.
			r.appendLedger(sched.TaskID(tid), jobs.StateDone)
		}
	}
}

// --- network ----------------------------------------------------------

// errMasterDown is the connection-refused transport error.
var errMasterDown = fmt.Errorf("sim: master down: %w", wire.ErrInjected)

// roundTrip models one slave→master call in virtual time: the request
// travels Latency, the master dispatches it at the delivery instant, and
// the response travels Latency back. The slave's fault rules can error,
// hang, delay, drop or duplicate the call — the same wire.RuleSet
// decisions FaultCaller executes on the wall clock, executed here as
// virtual events. cb runs on the calling incarnation only; responses to a
// crashed or hung slave evaporate, but requests already in flight still
// reach the master (the late-completion hazard under test).
func (r *run) roundTrip(m *machine, req wire.Envelope, cb func(resp wire.Envelope, err error)) {
	ep := m.epoch
	lat := r.sc.Latency
	done := func(after time.Duration, resp wire.Envelope, err error) {
		r.sim.After(after, func() {
			if m.epoch == ep {
				cb(resp, err)
			}
		})
	}
	action, delay, fired := m.rules.Next(wire.KindOf(req))
	if fired {
		r.faults++
		switch action {
		case wire.FaultError:
			done(lat, wire.Envelope{}, fmt.Errorf("%w: %v lost", wire.ErrInjected, wire.KindOf(req)))
			return
		case wire.FaultHang:
			done(r.sc.CallTimeout, wire.Envelope{}, fmt.Errorf("%w: call hung until timeout", wire.ErrInjected))
			return
		case wire.FaultDelay:
			lat += delay
		case wire.FaultDrop:
			r.sim.After(lat, func() { _, _ = r.deliver(m, ep, req) })
			done(r.sc.CallTimeout, wire.Envelope{}, fmt.Errorf("%w: response dropped", wire.ErrInjected))
			return
		case wire.FaultDup:
			// First copy delivered; the caller sees the second response.
			r.sim.After(lat, func() { _, _ = r.deliver(m, ep, req) })
		}
	}
	r.sim.After(lat, func() {
		resp, err := r.deliver(m, ep, req)
		if err != nil {
			done(r.sc.Latency, wire.Envelope{}, err)
			return
		}
		done(r.sc.Latency, resp, nil)
	})
}

// deliver hands one request to the master core at the current virtual
// instant, maintaining the invariant trackers and the durable side effects
// (ledger transitions, checkpoint-on-completion) the wall-clock master
// performs around Dispatch.
func (r *run) deliver(m *machine, epoch int, req wire.Envelope) (wire.Envelope, error) {
	if !r.masterUp() {
		return wire.Envelope{}, errMasterDown
	}
	now := r.sim.Now()
	coord := r.core.Coordinator()
	resp := r.core.Dispatch(req, now)

	// Track ownership and delivery ground truth for the invariant checks.
	if req.Register != nil && resp.RegisterAck != nil {
		id := resp.RegisterAck.Slave
		r.owner[id] = incarnation{m: m, epoch: epoch}
		r.lastDelivered[id] = now
		r.lastContact[id] = coord.LastContact(id)
	}
	if id, ok := senderOf(req); ok && int(id) < coord.Slaves() && !coord.Dead(id) {
		r.lastDelivered[id] = now
		lc := coord.LastContact(id)
		if prev, seen := r.lastContact[id]; seen && lc < prev {
			r.violatef("monotone-history: slave id %d LastContact went backwards: %v -> %v", id, prev, lc)
		}
		r.lastContact[id] = lc
	}

	// Durable side effects, in the same order a real master performs them:
	// WAL append first, then the synchronous checkpoint.
	if req.Request != nil && resp.Assign != nil && len(resp.Assign.Tasks) > 0 {
		for _, t := range resp.Assign.Tasks {
			r.appendLedger(t.ID, jobs.StateRunning)
		}
	}
	if req.Complete != nil && resp.CompleteAck != nil && resp.CompleteAck.Accepted {
		r.appendLedger(req.Complete.Task, jobs.StateDone)
		r.saveCheckpoint()
	}
	r.afterDispatch(req, &resp, now)
	return resp, nil
}

// senderOf extracts the slave ID a request claims to come from.
func senderOf(req wire.Envelope) (sched.SlaveID, bool) {
	switch {
	case req.Request != nil:
		return req.Request.Slave, true
	case req.Progress != nil:
		return req.Progress.Slave, true
	case req.Complete != nil:
		return req.Complete.Slave, true
	default:
		return 0, false
	}
}

func (r *run) saveCheckpoint() {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r.core.Snapshot()); err != nil {
		r.violatef("checkpoint: %v", err)
		return
	}
	r.checkpoint = buf.Bytes()
}

// --- jobs ledger ------------------------------------------------------

func ledgerID(tid sched.TaskID) string { return fmt.Sprintf("task-%03d", int(tid)) }

// appendLedger logs one job transition using the exact record encoding the
// jobs store writes (jobs.MarshalRecord), so jobs.Replay exercises its
// real input format. Timestamps are synthetic-but-deterministic: virtual
// nanoseconds since an arbitrary epoch.
func (r *run) appendLedger(tid sched.TaskID, state jobs.State) {
	created := time.Unix(0, int64(tid)).UTC()
	j := jobs.Job{
		ID:      ledgerID(tid),
		Key:     ledgerID(tid),
		State:   state,
		Created: created,
	}
	if state != jobs.StateQueued {
		j.Started = created.Add(r.sim.Now())
	}
	if state == jobs.StateDone {
		j.Finished = created.Add(r.sim.Now())
	}
	line, err := jobs.MarshalRecord(j)
	if err != nil {
		r.violatef("ledger: %v", err)
		return
	}
	r.wal.Write(line)
}

// --- final report -----------------------------------------------------

func (r *run) report(fired uint64) *Report {
	rep := &Report{
		Name:        r.sc.Name,
		Seed:        r.sc.Seed,
		Makespan:    r.sim.Now(),
		EventsFired: fired,
		Restarts:    r.restarts,
		Expired:     r.expired,
		Faults:      r.faults,
		Arrivals:    len(r.arrivals),
		Rejected:    r.rejectedArrivals,
		Preempts:    r.preempts,
	}
	if r.scaler != nil {
		rep.ScaleEvents = len(r.scaler.Decisions())
	}
	r.checkFinal()
	if r.masterUp() {
		rep.Done = r.core.Done()
		rep.Results = r.core.Results()
		for _, a := range r.core.Coordinator().AssignmentLog() {
			if a.Replica {
				rep.Replicas++
			}
		}
	}
	rep.Violations = r.violations
	rep.EventLog = append([]byte(nil), r.eventBuf.Bytes()...)
	resJSON, err := json.Marshal(rep.Results)
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("report: results not serializable: %v", err))
	}
	h := sha256.New()
	_, _ = h.Write(rep.EventLog) // hash.Hash.Write never fails
	_, _ = h.Write(resJSON)
	_, _ = h.Write(r.wal.Bytes())
	rep.Fingerprint = hex.EncodeToString(h.Sum(nil))
	return rep
}

// checkFinal runs the end-of-run invariant library.
func (r *run) checkFinal() {
	r.checkTenantsFinal()
	if !r.masterUp() {
		r.violatef("quiescence: run ended with the master down (restart scheduled past the horizon?)")
		return
	}
	coord := r.core.Coordinator()
	if !coord.Done() {
		pool := coord.Pool()
		r.violatef("liveness: job not finished: %d/%d tasks done, %d ready, %d executing",
			pool.Finished(), pool.Len(), pool.Ready(), pool.ExecutingCount())
		return
	}

	// Exactly-once: every task has exactly one result, in task order, and
	// the pool agrees on the winner.
	results := coord.Results()
	if len(results) != len(r.queries) {
		r.violatef("exactly-once: %d results for %d tasks", len(results), len(r.queries))
	}
	seen := map[sched.TaskID]bool{}
	for _, res := range results {
		if seen[res.Task] {
			r.violatef("exactly-once: task %d finished twice in the result set", res.Task)
		}
		seen[res.Task] = true
		winner, at, ok := coord.Pool().FinishedBy(res.Task)
		if !ok || winner != res.Slave || at != res.At {
			r.violatef("convergence: task %d result credits slave %d@%v but the pool says %d@%v (ok=%t)",
				res.Task, res.Slave, res.At, winner, at, ok)
		}
	}

	// Quiescence: no live slave machine is still holding work.
	for _, m := range r.machines {
		if m.crashed || m.wedged || m.stopped {
			continue
		}
		if m.working != nil || len(m.queue) > 0 {
			r.violatef("quiescence: slave %s still holds work after the job finished", m.spec.Name)
		}
	}

	// Jobs durability: the final WAL replay must cover every task, all done.
	recs, err := jobs.Replay(nil, r.wal.Bytes())
	if err != nil {
		r.violatef("jobs-durability: final replay: %v", err)
		return
	}
	states := map[string]jobs.State{}
	for _, rec := range recs {
		states[rec.ID] = rec.State
	}
	for tid := range r.queries {
		id := ledgerID(sched.TaskID(tid))
		if st, ok := states[id]; !ok {
			r.violatef("jobs-durability: job %s missing from the final WAL", id)
		} else if st != jobs.StateDone {
			r.violatef("jobs-durability: job %s ended %s, want done", id, st)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
