package platform

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
)

func TestTraceRoundTrip(t *testing.T) {
	res, err := Run(fig5Experiment(true))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, res); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var assigns, samples, summaries, execs int
	for _, e := range events {
		switch e.Kind {
		case "assign":
			assigns++
			if e.PE == "" || len(e.Tasks) == 0 {
				t.Fatalf("bad assign event: %+v", e)
			}
		case "sample":
			samples++
		case "exec":
			execs++
			if e.EndSec < e.TimeSec {
				t.Fatalf("exec window inverted: %+v", e)
			}
		case "summary":
			summaries++
		default:
			t.Fatalf("unknown kind %q", e.Kind)
		}
	}
	if execs < 20 {
		t.Errorf("only %d exec events for a 20-task run", execs)
	}
	if assigns != len(res.Assignments) {
		t.Errorf("assigns = %d, want %d", assigns, len(res.Assignments))
	}
	if samples == 0 || summaries != len(res.PerPE)+1 {
		t.Errorf("samples=%d summaries=%d", samples, summaries)
	}
	sum, ok := TraceSummary(events)
	if !ok {
		t.Fatal("no overall summary")
	}
	if math.Abs(sum.MakespanSec-res.Makespan.Seconds()) > 1e-9 {
		t.Errorf("makespan = %v, want %v", sum.MakespanSec, res.Makespan.Seconds())
	}
	if sum.Makespan().Round(time.Millisecond) != res.Makespan.Round(time.Millisecond) {
		t.Errorf("Makespan() = %v", sum.Makespan())
	}
	// The replica assignment must be marked.
	found := false
	for _, e := range events {
		if e.Kind == "assign" && e.Replica {
			found = true
		}
	}
	if !found {
		t.Error("replica assignment missing from trace")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{\"kind\":\"assign\"}\nnot json\n")); err == nil {
		t.Error("garbage line accepted")
	}
}

func TestTraceSummaryMissing(t *testing.T) {
	if _, ok := TraceSummary([]TraceEvent{{Kind: "assign"}}); ok {
		t.Error("summary claimed present")
	}
}

func TestTraceNameFallback(t *testing.T) {
	// An assignment referencing a slave beyond PerPE (possible in hand-
	// crafted results) must not panic.
	res := &Result{
		Assignments: []sched.Assignment{{Slave: 9, Tasks: []sched.TaskID{1}}},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pe9") {
		t.Errorf("fallback name missing: %s", buf.String())
	}
}
