package jobs

import "repro/internal/metrics"

// WaitBuckets spans queue-wait latencies: a healthy queue drains in
// milliseconds, a saturated one backs up toward the minute range.
var WaitBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2, 10, 60, 300}

// RunBuckets spans job execution times, from trivial single-query searches
// to full-database batch jobs.
var RunBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 20, 60, 300, 1200}

// ResultBuckets spans encoded result sizes in bytes.
var ResultBuckets = []float64{1 << 10, 16 << 10, 256 << 10, 1 << 20, 16 << 20, 256 << 20}

// Metrics is the job subsystem's instrumentation bundle. Like every bundle
// in this repo it is optional: a Manager with a nil Config.Metrics skips
// all accounting, so embedded and test uses pay nothing.
type Metrics struct {
	Submitted      *metrics.Counter
	Coalesced      *metrics.Counter
	Rejected       *metrics.CounterVec
	Completed      *metrics.CounterVec
	CacheHits      *metrics.Counter
	CacheMisses    *metrics.Counter
	CacheEvictions *metrics.Counter
	StoreErrors    *metrics.Counter

	QueueDepth    *metrics.Gauge
	ExecutorsBusy *metrics.Gauge
	CacheBytes    *metrics.Gauge
	ByState       *metrics.GaugeVec

	// Per-tenant families (the "default" label is the anonymous tenant).
	TenantQueued   *metrics.GaugeVec
	TenantRunning  *metrics.GaugeVec
	TenantRejected *metrics.CounterVec
	TenantServed   *metrics.CounterVec

	WaitSeconds *metrics.Histogram
	RunSeconds  *metrics.Histogram
	ResultBytes *metrics.Histogram
}

// NewMetrics registers (or re-attaches to) the job families on r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Submitted:      r.Counter("jobs_submitted_total", "Job submissions accepted (including cache hits, excluding coalesced duplicates)."),
		Coalesced:      r.Counter("jobs_coalesced_total", "Submissions merged into an identical queued or running job (singleflight)."),
		Rejected:       r.CounterVec("jobs_rejected_total", "Submissions rejected by admission control, by reason.", "reason"),
		Completed:      r.CounterVec("jobs_completed_total", "Jobs reaching a terminal state, by outcome.", "outcome"),
		CacheHits:      r.Counter("jobs_cache_hits_total", "Submissions answered from the result cache without execution."),
		CacheMisses:    r.Counter("jobs_cache_misses_total", "Submissions that had to enqueue an execution."),
		CacheEvictions: r.Counter("jobs_cache_evictions_total", "Results evicted from the in-memory cache to respect the byte budget."),
		StoreErrors:    r.Counter("jobs_store_errors_total", "Durable-store write failures (jobs keep running; durability degrades)."),
		QueueDepth:     r.Gauge("jobs_queue_depth", "Jobs waiting for an executor."),
		ExecutorsBusy:  r.Gauge("jobs_executors_busy", "Executors currently running a job."),
		CacheBytes:     r.Gauge("jobs_cache_bytes", "Bytes held by the in-memory result cache."),
		ByState:        r.GaugeVec("jobs_by_state", "Jobs currently tracked, by state.", "state"),
		TenantQueued:   r.GaugeVec("tenant_queued_jobs", "Jobs waiting for an executor, by tenant.", "tenant"),
		TenantRunning:  r.GaugeVec("tenant_running_jobs", "Jobs currently executing, by tenant.", "tenant"),
		TenantRejected: r.CounterVec("tenant_rejected_total", "Submissions rejected by per-tenant quota, by tenant.", "tenant"),
		TenantServed:   r.CounterVec("tenant_served_residues_total", "Query residues successfully served, by tenant.", "tenant"),
		WaitSeconds:    r.Histogram("jobs_wait_seconds", "Time from submission to execution start.", WaitBuckets),
		RunSeconds:     r.Histogram("jobs_run_seconds", "Job execution time.", RunBuckets),
		ResultBytes:    r.Histogram("jobs_result_bytes", "Encoded result size per executed job.", ResultBuckets),
	}
}
