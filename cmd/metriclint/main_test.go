package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunPointsAtSwcheck pins the deprecation behaviour: every metriclint
// run tells the user where the check really lives now, and a clean tree
// still exits 0 so existing scripts keep working while they migrate.
func TestRunPointsAtSwcheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(nil, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run on a clean tree = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "swcheck -only metricname") {
		t.Errorf("deprecation pointer to `swcheck -only metricname` missing from stderr:\n%s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean tree produced findings:\n%s", stdout.String())
	}
}
