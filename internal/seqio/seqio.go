// Package seqio implements the paper's indexed sequence file format
// (§IV-B).
//
// Biological "databases" are huge flat FASTA files. Database files are read
// sequentially by the execution modules, which is fine — but the *query*
// file must support fetching an arbitrary subset of sequences quickly, so
// the paper proposes an index that records the total number of sequences,
// the size of the biggest sequence, and the byte offset of the beginning of
// every sequence in the flat file. With the offsets, a sequence in the
// middle of the file is retrieved without scanning.
//
// Index layout (little-endian):
//
//	magic   [8]byte  "SWSIDX1\x00"
//	count   uint64   number of sequences
//	maxLen  uint64   residues in the longest sequence
//	offsets [count+1]uint64  byte offset of each record; the final entry
//	                         is the flat file's size, so record i spans
//	                         offsets[i]..offsets[i+1]
package seqio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/fasta"
	"repro/internal/seq"
)

var magic = [8]byte{'S', 'W', 'S', 'I', 'D', 'X', '1', 0}

// IndexPath returns the conventional index file name for a FASTA path.
func IndexPath(fastaPath string) string { return fastaPath + ".swidx" }

// Build scans the flat FASTA file and writes its index to idxPath.
// It returns the number of sequences indexed.
func Build(fastaPath, idxPath string) (int, error) {
	f, err := os.Open(fastaPath)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	var offsets []uint64
	var maxLen, curLen uint64
	var pos uint64
	inRecord := false
	flush := func() {
		if inRecord && curLen > maxLen {
			maxLen = curLen
		}
		curLen = 0
	}
	// Scan line by line, tracking byte positions exactly.
	buf := make([]byte, 1<<16)
	var line []byte
	var lineStart uint64
	for {
		n, rerr := f.Read(buf)
		for _, c := range buf[:n] {
			if len(line) == 0 {
				lineStart = pos
			}
			pos++
			if c == '\n' {
				processLine(line, lineStart, &offsets, &curLen, &maxLen, &inRecord)
				line = line[:0]
				continue
			}
			line = append(line, c)
		}
		if rerr == io.EOF {
			if len(line) > 0 {
				processLine(line, lineStart, &offsets, &curLen, &maxLen, &inRecord)
			}
			break
		}
		if rerr != nil {
			return 0, rerr
		}
	}
	flush()
	offsets = append(offsets, pos) // end sentinel

	out, err := os.Create(idxPath)
	if err != nil {
		return 0, err
	}
	count := uint64(len(offsets) - 1)
	writeErr := func() error {
		if _, err := out.Write(magic[:]); err != nil {
			return err
		}
		for _, v := range []uint64{count, maxLen} {
			if err := binary.Write(out, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return binary.Write(out, binary.LittleEndian, offsets)
	}()
	if writeErr != nil {
		_ = out.Close()
		return 0, writeErr
	}
	if err := out.Close(); err != nil {
		return 0, err
	}
	return int(count), nil
}

// processLine updates index state for one line of the flat file.
func processLine(line []byte, lineStart uint64, offsets *[]uint64, curLen, maxLen *uint64, inRecord *bool) {
	if len(line) == 0 || line[0] == ';' {
		return
	}
	// Tolerate CRLF files: a trailing \r does not count as residue data.
	if line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	if len(line) > 0 && line[0] == '>' {
		if *inRecord && *curLen > *maxLen {
			*maxLen = *curLen
		}
		*curLen = 0
		*inRecord = true
		*offsets = append(*offsets, lineStart)
		return
	}
	if *inRecord {
		*curLen += uint64(len(line))
	}
}

// File is an open indexed sequence file supporting O(1) record access.
type File struct {
	flat    *os.File
	offsets []uint64
	maxLen  int
}

// Open loads the index and opens the flat file. If the index is missing it
// is built on the fly (and persisted next to the FASTA file).
func Open(fastaPath string) (*File, error) {
	idxPath := IndexPath(fastaPath)
	if _, err := os.Stat(idxPath); err != nil {
		if _, err := Build(fastaPath, idxPath); err != nil {
			return nil, fmt.Errorf("seqio: building index: %w", err)
		}
	}
	idx, err := os.ReadFile(idxPath)
	if err != nil {
		return nil, err
	}
	if len(idx) < 24 || [8]byte(idx[:8]) != magic {
		return nil, fmt.Errorf("seqio: %s: not an index file", idxPath)
	}
	count := binary.LittleEndian.Uint64(idx[8:16])
	maxLen := binary.LittleEndian.Uint64(idx[16:24])
	want := 24 + 8*(int(count)+1)
	if len(idx) != want {
		return nil, fmt.Errorf("seqio: %s: truncated index (%d bytes, want %d)", idxPath, len(idx), want)
	}
	offsets := make([]uint64, count+1)
	for i := range offsets {
		offsets[i] = binary.LittleEndian.Uint64(idx[24+8*i:])
	}
	flat, err := os.Open(fastaPath)
	if err != nil {
		return nil, err
	}
	return &File{flat: flat, offsets: offsets, maxLen: int(maxLen)}, nil
}

// Close releases the flat file.
func (f *File) Close() error { return f.flat.Close() }

// Count returns the number of sequences.
func (f *File) Count() int { return len(f.offsets) - 1 }

// MaxLen returns the length of the longest sequence, which the paper's
// header records so slaves can size their DP buffers up front.
func (f *File) MaxLen() int { return f.maxLen }

// Get retrieves sequence i without scanning the file.
func (f *File) Get(i int) (*seq.Sequence, error) {
	if i < 0 || i >= f.Count() {
		return nil, fmt.Errorf("seqio: index %d out of range [0,%d)", i, f.Count())
	}
	start, end := f.offsets[i], f.offsets[i+1]
	buf := make([]byte, end-start)
	if _, err := f.flat.ReadAt(buf, int64(start)); err != nil {
		return nil, err
	}
	recs, err := fasta.NewReader(bytes.NewReader(buf)).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) != 1 {
		return nil, fmt.Errorf("seqio: record %d parsed into %d sequences", i, len(recs))
	}
	return recs[0], nil
}

// GetRange retrieves sequences [lo, hi) — the "subset of query sequences"
// fetch the paper's format exists for.
func (f *File) GetRange(lo, hi int) ([]*seq.Sequence, error) {
	if lo < 0 || hi > f.Count() || lo > hi {
		return nil, fmt.Errorf("seqio: range [%d,%d) out of bounds [0,%d)", lo, hi, f.Count())
	}
	out := make([]*seq.Sequence, 0, hi-lo)
	for i := lo; i < hi; i++ {
		s, err := f.Get(i)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
