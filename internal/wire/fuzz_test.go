package wire

import (
	"bytes"
	"encoding/gob"
	"io"
	"testing"

	"repro/internal/sched"
)

// corpusEnvelopes are representative protocol messages, one per kind plus
// edge shapes (empty hits, alignment payloads, error envelopes), used both
// as the fuzz seed corpus and as a round-trip sanity check.
func corpusEnvelopes() []Envelope {
	return []Envelope{
		{Register: &RegisterMsg{Name: "gpu0", Kind: sched.KindGPU, DeclaredSpeed: 3.5e10}},
		{RegisterAck: &RegisterAckMsg{Slave: 2}},
		{Request: &RequestMsg{Slave: 0}},
		{Assign: &AssignMsg{Standby: true}},
		{Assign: &AssignMsg{Done: true}},
		{Assign: &AssignMsg{Replica: true, Tasks: []TaskSpec{
			{ID: 3, QueryID: "q3", Residues: []byte("MKV"), Cells: 1234},
		}}},
		{Progress: &ProgressMsg{Slave: 1, Rate: 2.5e9, Cells: 100000}},
		{ProgressAck: &ProgressAckMsg{Cancel: []sched.TaskID{1, 2}, Done: false}},
		{Complete: &CompleteMsg{Slave: 1, Task: 3, Rate: 1e9, Cells: 42, Hits: []Hit{
			{SeqID: "db1", Index: 7, Score: 88},
			{SeqID: "db2", Index: 9, Score: 17, QueryRow: []byte("AC-G"), TargetRow: []byte("ACTG"),
				QueryStart: 1, QueryEnd: 4, TargetStart: 2, TargetEnd: 6},
		}}},
		{CompleteAck: &CompleteAckMsg{Accepted: true, Cancel: []sched.TaskID{5}, Done: true}},
		{Error: "unknown slave 7"},
	}
}

// FuzzWireDecode feeds arbitrary bytes to the gob stream decoder the
// master and slaves read from the network. The codec must never panic on
// hostile input — it faces the network — and everything it does decode
// must survive a re-encode (no internally inconsistent envelopes).
func FuzzWireDecode(f *testing.F) {
	for _, env := range corpusEnvelopes() {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// A stream of several envelopes, as a long-lived connection produces.
	var stream bytes.Buffer
	enc := gob.NewEncoder(&stream)
	for _, env := range corpusEnvelopes()[:3] {
		if err := enc.Encode(&env); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(stream.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // the serving path caps message size well below this
		}
		dec := gob.NewDecoder(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			var env Envelope
			err := dec.Decode(&env)
			if err == io.EOF {
				return
			}
			if err != nil {
				return // malformed input must error, not panic
			}
			// Whatever decoded must re-encode cleanly.
			if err := gob.NewEncoder(io.Discard).Encode(&env); err != nil {
				t.Fatalf("decoded envelope does not re-encode: %v (%+v)", err, env)
			}
		}
	})
}

// TestEnvelopeRoundTrip pins the codec: every corpus envelope must survive
// an encode/decode cycle byte-for-byte in its decoded form.
func TestEnvelopeRoundTrip(t *testing.T) {
	for i, env := range corpusEnvelopes() {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
			t.Fatalf("envelope %d: encode: %v", i, err)
		}
		var got Envelope
		if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
			t.Fatalf("envelope %d: decode: %v", i, err)
		}
		var a, b bytes.Buffer
		if err := gob.NewEncoder(&a).Encode(&env); err != nil {
			t.Fatal(err)
		}
		if err := gob.NewEncoder(&b).Encode(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("envelope %d: round trip changed the message: %+v -> %+v", i, env, got)
		}
	}
}
