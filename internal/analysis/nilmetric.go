package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NilMetricAnalyzer preserves the zero-overhead-when-uninstrumented
// contract from PR 2: every instrumentation bundle (sched.Metrics,
// wire.Metrics, ...) is optional, so any access to one of its
// *metrics.Counter / Gauge / Histogram (or *Vec) fields must be dominated
// by a nil check of the bundle pointer. The analyzer recognises the two
// guard shapes the codebase uses:
//
//	if m := c.cfg.Metrics; m != nil { m.TasksAssigned.Inc() }
//
//	m := c.cfg.Metrics
//	if m == nil {
//	    return
//	}
//	m.ReadyTasks.Set(...)
//
// i.e. an enclosing if whose condition nil-checks the same expression, or
// an earlier `if X == nil { return/continue/break/panic }` statement in an
// enclosing block. Handles reached through a non-pointer owner (which
// cannot be nil) are exempt, as are uses inside the nil comparison
// itself. Structural guarantees the analyzer cannot see (e.g. wire.Meter
// returning early on a nil bundle) are documented with an ignore
// directive at the use site.
var NilMetricAnalyzer = &Analyzer{
	Name: "nilmetric",
	Doc:  "metric-handle fields must be reached through a nil-checked bundle pointer",
	Run:  runNilMetric,
}

// metricHandleNames are the instrument types of internal/metrics whose
// use as a struct field marks an optional instrumentation hook.
// EventLog is absent on purpose: its methods are nil-receiver safe, so a
// nil log needs no call-site guard.
var metricHandleNames = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

func runNilMetric(pass *Pass) {
	// The metrics package itself is exempt: its internals (registry
	// children) keep exactly one non-nil instrument per family kind, which
	// the bundle contract does not describe.
	if strings.HasSuffix(pass.Pkg.Path, "internal/metrics") {
		return
	}
	info := pass.Pkg.Info
	pass.Pkg.WalkStack(func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		if !isMetricHandle(selection.Obj().Type()) {
			return true
		}
		// Owners that cannot be nil need no guard.
		ownerType := info.Types[sel.X].Type
		if _, ptr := ownerType.Underlying().(*types.Pointer); !ptr {
			return true
		}
		// Either the bundle pointer or the handle field itself may carry
		// the nil check: `if m != nil { m.Faults.Inc() }` and
		// `if s.met == nil { return }; s.met.Faults.Inc()` both count.
		owner := types.ExprString(sel.X)
		if guardedByNilCheck(info, stack, owner) ||
			guardedByNilCheck(info, stack, types.ExprString(sel)) ||
			insideNilComparison(stack) {
			return true
		}
		pass.Reportf(sel.Pos(), "use of metric handle %s is not dominated by a nil check of %s (uninstrumented runs must pay nothing)",
			types.ExprString(sel), owner)
		return true
	})
}

// isMetricHandle reports whether t is a pointer to one of
// internal/metrics' instrument types.
func isMetricHandle(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/metrics") &&
		metricHandleNames[obj.Name()]
}

// guardedByNilCheck walks the ancestor stack looking for either guard
// shape for owner (rendered with types.ExprString).
func guardedByNilCheck(info *types.Info, stack []ast.Node, owner string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		child := ast.Node(nil)
		if i+1 < len(stack) {
			child = stack[i+1]
		}
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			// Guarded when the use sits in the body of `if owner != nil`.
			if child == anc.Body && condChecksNotNil(anc.Cond, owner) {
				return true
			}
		case *ast.BlockStmt:
			// Guarded when an earlier statement of an enclosing block is
			// `if owner == nil { return/continue/break/panic }`.
			for _, stmt := range anc.List {
				if stmt == child {
					break
				}
				if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Init == nil &&
					condChecksNil(ifs.Cond, owner) && terminates(ifs.Body) {
					return true
				}
			}
		}
	}
	return false
}

// condChecksNotNil reports whether cond contains `owner != nil` (possibly
// inside && chains).
func condChecksNotNil(cond ast.Expr, owner string) bool {
	return condHasNilCmp(cond, owner, "!=")
}

// condChecksNil reports whether cond contains `owner == nil`.
func condChecksNil(cond ast.Expr, owner string) bool {
	return condHasNilCmp(cond, owner, "==")
}

func condHasNilCmp(cond ast.Expr, owner, op string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || bin.Op.String() != op {
			return true
		}
		if (isNilIdent(bin.Y) && types.ExprString(bin.X) == owner) ||
			(isNilIdent(bin.X) && types.ExprString(bin.Y) == owner) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a guard body unconditionally leaves the
// enclosing flow: its last statement is a return, branch or panic.
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// insideNilComparison exempts the nil check itself: `if m.Faults != nil`.
func insideNilComparison(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if bin, ok := stack[i].(*ast.BinaryExpr); ok {
			if (bin.Op.String() == "==" || bin.Op.String() == "!=") &&
				(isNilIdent(bin.X) || isNilIdent(bin.Y)) {
				return true
			}
		}
	}
	return false
}
