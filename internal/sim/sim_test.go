package sim

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/wire"
)

// baseline is a small healthy cluster: no faults at all.
func baseline() Scenario {
	return Scenario{
		Name:         "baseline",
		Seed:         1,
		TaskResidues: []int{400, 800, 1200, 600},
		Policy:       "PSS",
		Lease:        2 * time.Second,
		Slaves: []SlaveSpec{
			{Name: "gpu0", Kind: sched.KindGPU, Speed: 2e9, Overhead: 5 * time.Millisecond},
			{Name: "cpu0", Kind: sched.KindCPU, Speed: 4e8},
		},
	}
}

func mustRun(t *testing.T, sc Scenario) *Report {
	t.Helper()
	rep, err := Run(sc)
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	return rep
}

func requireClean(t *testing.T, rep *Report) {
	t.Helper()
	if !rep.Done {
		t.Fatalf("%s (seed %d): job did not finish: %v", rep.Name, rep.Seed, rep.Violations)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("%s (seed %d): invariants violated:\n  %v", rep.Name, rep.Seed, rep.Violations)
	}
}

func TestBaselineRunsClean(t *testing.T) {
	rep := mustRun(t, baseline())
	requireClean(t, rep)
	if len(rep.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(rep.Results))
	}
	if rep.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}

// TestDeterminism is the acceptance-criteria check: rerunning the same
// scenario+seed must produce byte-identical event logs and results, pinned
// by the report fingerprint. Exercised on a chaotic scenario — faults,
// restarts, WAL tearing — where nondeterminism would actually hide.
func TestDeterminism(t *testing.T) {
	chaotic := baseline()
	chaotic.Name = "chaotic"
	chaotic.Adjust = true
	chaotic.TearWAL = true
	chaotic.Slaves = append(chaotic.Slaves, SlaveSpec{
		Name: "flaky", Kind: sched.KindCPU, Speed: 3e8, Jitter: 0.08,
		HangAt: 600 * time.Millisecond, RecoverAt: 2500 * time.Millisecond,
		Rules: []wire.Rule{
			{Kind: wire.CompleteKind, Action: wire.FaultDrop, Prob: 0.5, Count: 5},
			{Kind: wire.ProgressKind, Action: wire.FaultDelay, Delay: 80 * time.Millisecond, Prob: 0.3, Count: 8},
		},
	})
	chaotic.Restarts = []MasterRestart{{At: 900 * time.Millisecond, DownFor: 400 * time.Millisecond}}

	for _, sc := range []Scenario{baseline(), chaotic} {
		a := mustRun(t, sc)
		b := mustRun(t, sc)
		requireClean(t, a)
		if a.Fingerprint != b.Fingerprint {
			t.Errorf("%s: fingerprints differ across reruns: %s vs %s", sc.Name, a.Fingerprint, b.Fingerprint)
		}
		if !bytes.Equal(a.EventLog, b.EventLog) {
			t.Errorf("%s: event logs differ across reruns", sc.Name)
		}
		aj, _ := json.Marshal(a.Results)
		bj, _ := json.Marshal(b.Results)
		if !bytes.Equal(aj, bj) {
			t.Errorf("%s: results differ across reruns:\n%s\n%s", sc.Name, aj, bj)
		}
	}
}

// TestSlaveCrashRecovers: a slave dying mid-run must not lose its tasks.
func TestSlaveCrashRecovers(t *testing.T) {
	sc := baseline()
	sc.Name = "crash"
	sc.Slaves[1].CrashAt = 300 * time.Millisecond
	rep := mustRun(t, sc)
	requireClean(t, rep)
}

// TestHungSlaveNeedsLease: a silently wedged slave stalls its tasks until
// the lease expires; with the lease on, the job still finishes and the
// expiry is accounted.
func TestHungSlaveNeedsLease(t *testing.T) {
	sc := baseline()
	sc.Name = "hang"
	sc.TaskResidues = []int{4000, 4000, 4000, 4000}
	sc.Slaves[1].HangAt = 200 * time.Millisecond
	rep := mustRun(t, sc)
	requireClean(t, rep)
	if rep.Expired == 0 {
		t.Error("hung slave never lease-expired")
	}
}

// TestMasterRestartRecovers: the master dies mid-job and recovers from its
// checkpoint + jobs WAL; finished tasks stay finished and the rest re-run.
func TestMasterRestartRecovers(t *testing.T) {
	sc := baseline()
	sc.Name = "restart"
	sc.TaskResidues = []int{3000, 3000, 3000, 3000, 3000}
	sc.TearWAL = true
	sc.Restarts = []MasterRestart{
		{At: 500 * time.Millisecond, DownFor: 300 * time.Millisecond},
		{At: 2 * time.Second, DownFor: 200 * time.Millisecond},
	}
	rep := mustRun(t, sc)
	requireClean(t, rep)
	if rep.Restarts != 2 {
		t.Errorf("counted %d restarts, want 2", rep.Restarts)
	}
}

// TestAdjustmentReplicates: with one very slow slave and adjustment on, a
// fast idle slave should replicate the straggler's task and win.
func TestAdjustmentReplicates(t *testing.T) {
	sc := Scenario{
		Name:         "adjust",
		Seed:         7,
		TaskResidues: []int{500, 500, 8000},
		Policy:       "SS",
		Adjust:       true,
		Lease:        10 * time.Second,
		Slaves: []SlaveSpec{
			{Name: "fast", Kind: sched.KindGPU, Speed: 5e9},
			{Name: "slow", Kind: sched.KindCPU, Speed: 2e7},
		},
	}
	rep := mustRun(t, sc)
	requireClean(t, rep)
	if rep.Replicas == 0 {
		t.Error("workload adjustment never replicated the straggler's task")
	}
}

// TestValidateRejects pins scenario validation.
func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Scenario){
		"no tasks":          func(sc *Scenario) { sc.TaskResidues = nil },
		"no slaves":         func(sc *Scenario) { sc.Slaves = nil },
		"bad policy":        func(sc *Scenario) { sc.Policy = "nope" },
		"dup names":         func(sc *Scenario) { sc.Slaves[1].Name = sc.Slaves[0].Name },
		"crash and hang":    func(sc *Scenario) { sc.Slaves[0].CrashAt = 1; sc.Slaves[0].HangAt = 1 },
		"orphan recover":    func(sc *Scenario) { sc.Slaves[0].RecoverAt = time.Second },
		"recover too early": func(sc *Scenario) { sc.Slaves[0].CrashAt = time.Second; sc.Slaves[0].RecoverAt = time.Second },
		"overlap restarts": func(sc *Scenario) {
			sc.Restarts = []MasterRestart{{At: time.Second, DownFor: time.Second}, {At: 1500 * time.Millisecond, DownFor: time.Second}}
		},
		"tiny timeout": func(sc *Scenario) { sc.Latency = 50 * time.Millisecond; sc.CallTimeout = 60 * time.Millisecond },
	}
	for name, mutate := range cases {
		sc := baseline()
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
	if err := baseline().Validate(); err != nil {
		t.Errorf("baseline rejected: %v", err)
	}
}
