package jobs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// walFixture builds a realistic (snapshot, wal) pair: a snapshot of two
// terminal jobs, and a WAL carrying a queued→running→done progression, a
// duplicate record, and one job present in both snapshot and WAL (the WAL
// must win).
func walFixture(t testing.TB) (snapshot, wal []byte) {
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	snapJobs := []Job{
		{ID: "j01", Key: "k1", State: StateDone, Created: t0, Finished: t0.Add(time.Second)},
		{ID: "j02", Key: "k2", State: StateFailed, Created: t0.Add(time.Second), Error: "boom"},
	}
	raw, err := json.Marshal(snapJobs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, j := range []Job{
		{ID: "j02", Key: "k2", State: StateDone, Created: t0.Add(time.Second)}, // overrides snapshot
		{ID: "j03", Key: "k3", State: StateQueued, Created: t0.Add(2 * time.Second)},
		{ID: "j03", Key: "k3", State: StateRunning, Created: t0.Add(2 * time.Second)},
		{ID: "j03", Key: "k3", State: StateRunning, Created: t0.Add(2 * time.Second)}, // duplicate
		{ID: "j03", Key: "k3", State: StateDone, Created: t0.Add(2 * time.Second)},
	} {
		line, err := MarshalRecord(j)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	return raw, buf.Bytes()
}

// FuzzWALReplay feeds arbitrary snapshot/WAL byte pairs to the recovery
// path. Replay must never panic, and whatever it accepts must be stable:
// re-serializing the recovered records as a snapshot plus an empty WAL
// (exactly what compaction writes) and replaying again must reproduce the
// same records — recovery is idempotent over its own output.
func FuzzWALReplay(f *testing.F) {
	snap, wal := walFixture(f)
	f.Add(snap, wal)
	f.Add([]byte(nil), wal)
	f.Add(snap, []byte(nil))
	// Torn tail: a crash mid-append leaves a half-written last line.
	f.Add(snap, wal[:len(wal)-7])
	// Garbage interleaved with valid records.
	f.Add([]byte("[]"), append([]byte("{not json}\n"), wal...))

	f.Fuzz(func(t *testing.T, snapshot, walBytes []byte) {
		if len(snapshot) > 1<<20 || len(walBytes) > 1<<20 {
			return
		}
		recs, err := Replay(snapshot, walBytes)
		if err != nil {
			return // corrupt snapshot must error, not panic
		}
		reSnap, err := json.Marshal(recs)
		if err != nil {
			t.Fatalf("recovered records do not re-marshal: %v", err)
		}
		again, err := Replay(reSnap, nil)
		if err != nil {
			t.Fatalf("replaying recovery's own snapshot failed: %v", err)
		}
		a, err := json.Marshal(recs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("replay not idempotent:\nfirst:  %s\nsecond: %s", a, b)
		}
	})
}

// TestReplaySemantics pins the recovery contract on the fixture: last WAL
// record wins, torn tails drop silently, order is by Created then ID.
func TestReplaySemantics(t *testing.T) {
	snap, wal := walFixture(t)
	// Tear the final line mid-record: j03's done transition is lost, so the
	// last complete record (running) must win instead.
	torn := wal[:len(wal)-7]
	recs, err := Replay(snap, torn)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	for i, want := range []struct {
		id    string
		state State
	}{
		{"j01", StateDone},
		{"j02", StateDone}, // WAL overrode the snapshot's failed
		{"j03", StateRunning},
	} {
		if recs[i].ID != want.id || recs[i].State != want.state {
			t.Errorf("record %d: got %s/%s, want %s/%s",
				i, recs[i].ID, recs[i].State, want.id, want.state)
		}
	}

	// A corrupt snapshot is a hard error.
	if _, err := Replay([]byte("{broken"), nil); err == nil {
		t.Error("corrupt snapshot did not error")
	}
}
