package sched

import "repro/internal/metrics"

// Metrics is the coordinator's instrumentation bundle. Every hook is
// optional: a Coordinator with a nil Config.Metrics skips all accounting,
// so the discrete-event experiments pay nothing unless they opt in.
//
// The counters follow the task lifecycle (§IV-A.3): assigned counts
// first-copy grants, replicated counts extra copies from the workload
// adjustment mechanism, requeued counts executing tasks that fell back to
// ready because every executor abandoned them or died, completed counts
// accepted first-finisher results. The gauges mirror the pool's
// ready/executing/finished depths and the per-slave Ω-window speed
// estimate that drives PSS and the adjustment mechanism.
type Metrics struct {
	TasksAssigned    *metrics.Counter
	TasksCompleted   *metrics.Counter
	TasksRequeued    *metrics.Counter
	TasksReplicated  *metrics.Counter
	TasksRedelivered *metrics.Counter
	TasksAdded       *metrics.Counter
	TasksPreempted   *metrics.Counter
	LeaseExpirations *metrics.Counter

	ReadyTasks     *metrics.Gauge
	ExecutingTasks *metrics.Gauge
	FinishedTasks  *metrics.Gauge
	AliveSlaves    *metrics.Gauge

	// SlaveRate is the current speed estimate per slave, in GCUPS —
	// the live version of the paper's per-device throughput plots.
	SlaveRate *metrics.GaugeVec
}

// NewMetrics registers (or re-attaches to) the scheduler families on r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		TasksAssigned:    r.Counter("sched_tasks_assigned_total", "Tasks granted to slaves by the allocation policy (first copies only)."),
		TasksCompleted:   r.Counter("sched_tasks_completed_total", "Tasks with an accepted (first-finisher) result."),
		TasksRequeued:    r.Counter("sched_tasks_requeued_total", "Executing tasks returned to ready after losing every executor (death, cancellation or abandonment)."),
		TasksReplicated:  r.Counter("sched_tasks_replicated_total", "Extra task copies granted by the workload adjustment mechanism."),
		TasksRedelivered: r.Counter("sched_tasks_redelivered_total", "Outstanding assignments retransmitted to slaves whose Assign response was lost."),
		TasksAdded:       r.Counter("sched_tasks_added_total", "Follow-on tasks appended to the pool mid-job (e.g. rescore stages of a filtered search)."),
		TasksPreempted:   r.Counter("sched_tasks_preempted_total", "Replicated task copies revoked by priority/share preemption (sole copies are never preempted)."),
		LeaseExpirations: r.Counter("sched_lease_expirations_total", "Slaves declared dead by the lease-based failure detector."),
		ReadyTasks:       r.Gauge("sched_ready_tasks", "Tasks not yet assigned to any slave."),
		ExecutingTasks:   r.Gauge("sched_executing_tasks", "Tasks running on at least one slave."),
		FinishedTasks:    r.Gauge("sched_finished_tasks", "Tasks with a collected result."),
		AliveSlaves:      r.Gauge("sched_alive_slaves", "Registered slaves not declared dead."),
		SlaveRate:        r.GaugeVec("sched_slave_rate_gcups", "Current Omega-window speed estimate per slave, in GCUPS.", "slave"),
	}
}
