// Command benchjson archives a `go test -bench` run as JSON: it reads the
// benchmark output on stdin (echoing it to stderr so progress stays
// visible), parses it with internal/benchfmt and writes one dated JSON
// document. `make bench` pipes into it; see EXPERIMENTS.md for the file
// format.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson          # BENCH_<date>.json
//	go test -bench=. -benchmem ./... | benchjson -o x.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/benchfmt"
)

// doc is the archived document: the parsed Set plus provenance.
type doc struct {
	Date string `json:"date"`
	*benchfmt.Set
}

func main() {
	out := flag.String("o", "", "output file (default BENCH_<date>.json)")
	flag.Parse()
	now := time.Now().UTC()
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%s.json", now.Format("2006-01-02"))
	}
	set, err := benchfmt.Parse(io.TeeReader(os.Stdin, os.Stderr))
	if err != nil {
		fail("%v", err)
	}
	if len(set.Results) == 0 {
		fail("no benchmark lines on stdin (run with -bench=.)")
	}
	f, err := os.Create(*out)
	if err != nil {
		fail("%v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc{Date: now.Format(time.RFC3339), Set: set}); err != nil {
		fail("%v", err)
	}
	if err := f.Close(); err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(set.Results), *out)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
