package fasta

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/seq"
)

// TestReaderNeverPanicsOnGarbage feeds random byte soup — including '>'
// and newline-rich soup — and requires the reader to either parse or fail
// cleanly, never panic or loop.
func TestReaderNeverPanicsOnGarbage(t *testing.T) {
	alphabet := []byte(">;\r\nACGTacgt \t|0123_")
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 300; iter++ {
		n := rng.Intn(400)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		r := NewReader(bytes.NewReader(buf))
		for {
			_, err := r.Read()
			if err != nil {
				break
			}
		}
	}
}

// TestReaderGarbageThenValid checks the reader reports a clean error for
// junk prefixes rather than silently skipping them.
func TestReaderGarbageThenValid(t *testing.T) {
	if _, err := NewReader(strings.NewReader("junk\n>ok\nACGT\n")).Read(); err == nil {
		t.Error("junk before first header accepted")
	}
}

// TestRoundTripRandomRecords writes random well-formed records and reads
// them back identically for many shapes of ID, description and length.
func TestRoundTripRandomRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	letters := "ACDEFGHIKLMNPQRSTVWY"
	for iter := 0; iter < 100; iter++ {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Wrap = 1 + rng.Intn(90)
		nRec := 1 + rng.Intn(8)
		type rec struct{ id, desc, res string }
		var want []rec
		for i := 0; i < nRec; i++ {
			id := "id" + string(rune('a'+i))
			desc := ""
			if rng.Intn(2) == 0 {
				desc = "some words here"
			}
			res := make([]byte, rng.Intn(300))
			for j := range res {
				res[j] = letters[rng.Intn(len(letters))]
			}
			want = append(want, rec{id, desc, string(res)})
			if err := w.Write(newSeq(id, desc, res)); err != nil {
				t.Fatal(err)
			}
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if len(got) != nRec {
			t.Fatalf("iter %d: %d records, want %d", iter, len(got), nRec)
		}
		for i, g := range got {
			if g.ID != want[i].id || g.Description != want[i].desc || string(g.Residues) != want[i].res {
				t.Fatalf("iter %d record %d mismatch", iter, i)
			}
		}
	}
}

func newSeq(id, desc string, res []byte) *seq.Sequence { return seq.New(id, desc, res) }
