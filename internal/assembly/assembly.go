// Package assembly implements a greedy overlap-layout assembler — the
// second of the paper's §VI future-work applications ("DNA
// Assembly/Scaffolding") — built on the dynamic-programming machinery of
// this repository.
//
// The pipeline is the classic greedy OLC:
//
//  1. overlap: score every ordered read pair with an *overlap alignment*
//     (a suffix of read A against a prefix of read B; A's leading residues
//     and B's trailing residues are free, gaps inside the overlap pay the
//     affine penalties);
//  2. layout: repeatedly merge the highest-scoring remaining overlap whose
//     ends are still free, chaining reads into contigs;
//  3. consensus: a merged contig is A plus the non-overlapping tail of B
//     (pairwise merging needs no voting step).
//
// Reads are assumed to come from the same strand; callers wanting
// double-stranded assembly can add each read's seq.ReverseComplement to the
// input.
package assembly

import (
	"fmt"
	"sort"

	"repro/internal/score"
	"repro/internal/seq"
)

const negInf = -(1 << 30)

// Overlap describes the best suffix(A)-prefix(B) alignment of two reads.
type Overlap struct {
	A, B  int // read indices
	Score int
	LenA  int // residues of A's suffix inside the overlap
	LenB  int // residues of B's prefix inside the overlap
}

// OverlapScore computes the best overlap alignment of a's suffix with b's
// prefix: free leading residues in a, free trailing residues in b, affine
// gaps inside. It returns the score and the overlap extents on both reads
// (0 extents when even an empty overlap beats every real one).
func OverlapScore(a, b []byte, s score.Scheme) Overlap {
	m, n := len(a), len(b)
	o := Overlap{}
	if m == 0 || n == 0 {
		return o
	}
	open, ext := s.Gap.Open, s.Gap.Extend

	// H[i][j]: best score aligning a[i0..i) to b[0..j) for some free i0.
	// Row 0..m over a, col 0..n over b. H[i][0] = 0 (suffix may start
	// anywhere); H[0][j] forces b's prefix into a gap (costly).
	H := make([][]int, m+1)
	E := make([][]int, m+1)
	F := make([][]int, m+1)
	for i := 0; i <= m; i++ {
		H[i] = make([]int, n+1)
		E[i] = make([]int, n+1)
		F[i] = make([]int, n+1)
	}
	for j := 1; j <= n; j++ {
		E[0][j] = -open - j*ext
		H[0][j] = E[0][j]
		F[0][j] = negInf
	}
	for i := 1; i <= m; i++ {
		E[i][0], F[i][0] = negInf, negInf
		for j := 1; j <= n; j++ {
			E[i][j] = max(H[i][j-1]-open-ext, E[i][j-1]-ext)
			F[i][j] = max(H[i-1][j]-open-ext, F[i-1][j]-ext)
			H[i][j] = max(H[i-1][j-1]+s.Matrix.Score(a[i-1], b[j-1]), E[i][j], F[i][j])
		}
	}
	// The overlap ends at a's end (row m), anywhere in b.
	bestJ := 0
	for j := 1; j <= n; j++ {
		if H[m][j] > H[m][bestJ] {
			bestJ = j
		}
	}
	if bestJ == 0 || H[m][bestJ] <= 0 {
		return o
	}
	o.Score = H[m][bestJ]
	o.LenB = bestJ
	// Walk back to find where the suffix of a begins.
	i, j := m, bestJ
	st := 0 // 0=H 1=E 2=F
	for j > 0 {
		switch st {
		case 0:
			switch {
			case i > 0 && H[i][j] == H[i-1][j-1]+s.Matrix.Score(a[i-1], b[j-1]):
				i, j = i-1, j-1
			case H[i][j] == E[i][j]:
				st = 1
			default:
				st = 2
			}
		case 1:
			if j == 1 || E[i][j] == H[i][j-1]-open-ext {
				st = 0
			}
			j--
		case 2:
			if F[i][j] == H[i-1][j]-open-ext {
				st = 0
			}
			i--
		}
	}
	o.LenA = m - i
	return o
}

// Contig is one assembled sequence with the indices of the reads that built
// it, in layout order.
type Contig struct {
	Residues []byte
	Reads    []int
}

// Options tunes the assembler.
type Options struct {
	// MinScore is the smallest overlap score worth merging; overlaps below
	// it are ignored (controls misassembly on noisy data).
	MinScore int
	// MinOverlap discards overlaps shorter than this many residues on
	// either read.
	MinOverlap int
	// Scheme scores the overlaps; zero value = match +2 / mismatch -3,
	// gap open 5 extend 2 over DNA (BLAST-like megablast defaults).
	Scheme score.Scheme
}

func (o *Options) fill() {
	if o.Scheme.Matrix == nil {
		o.Scheme = score.Scheme{
			Matrix: score.NewMatchMismatch(seq.DNA, 2, -3),
			Gap:    score.AffineGap(5, 2),
		}
	}
	if o.MinOverlap < 1 {
		o.MinOverlap = 16
	}
	if o.MinScore < 1 {
		o.MinScore = o.MinOverlap // ~break-even for the default scheme
	}
}

// Assemble runs the greedy pipeline over the reads.
func Assemble(reads []*seq.Sequence, opts Options) ([]Contig, error) {
	opts.fill()
	if err := opts.Scheme.Validate(); err != nil {
		return nil, err
	}
	n := len(reads)
	if n == 0 {
		return nil, fmt.Errorf("assembly: no reads")
	}

	// Phase 1: all ordered overlaps above the thresholds.
	var overlaps []Overlap
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			o := OverlapScore(reads[a].Residues, reads[b].Residues, opts.Scheme)
			o.A, o.B = a, b
			if o.Score >= opts.MinScore && o.LenA >= opts.MinOverlap && o.LenB >= opts.MinOverlap {
				// A contained read adds nothing to the layout.
				if o.LenB < len(reads[b].Residues) || len(reads[b].Residues) <= len(reads[a].Residues) {
					overlaps = append(overlaps, o)
				}
			}
		}
	}
	sort.SliceStable(overlaps, func(i, j int) bool {
		if overlaps[i].Score != overlaps[j].Score {
			return overlaps[i].Score > overlaps[j].Score
		}
		if overlaps[i].A != overlaps[j].A {
			return overlaps[i].A < overlaps[j].A
		}
		return overlaps[i].B < overlaps[j].B
	})

	// Phase 2: greedy layout. Each read may donate its right end once and
	// its left end once, and merges must not close a cycle.
	next := make([]int, n) // next[a] = b when a's right end joins b
	prev := make([]int, n)
	for i := range next {
		next[i], prev[i] = -1, -1
	}
	lenB := make([]int, n) // overlap consumed from read i's front when merged
	for _, o := range overlaps {
		if next[o.A] != -1 || prev[o.B] != -1 {
			continue
		}
		// Reject cycles: walking forward from B must not reach A.
		end := o.B
		for next[end] != -1 {
			end = next[end]
		}
		if end == o.A {
			continue
		}
		next[o.A] = o.B
		prev[o.B] = o.A
		lenB[o.B] = o.LenB
	}

	// Phase 3: emit contigs from chain heads.
	var contigs []Contig
	for i := 0; i < n; i++ {
		if prev[i] != -1 {
			continue // not a head
		}
		c := Contig{Residues: append([]byte{}, reads[i].Residues...), Reads: []int{i}}
		for cur := next[i]; cur != -1; cur = next[cur] {
			tail := reads[cur].Residues
			if lenB[cur] < len(tail) {
				c.Residues = append(c.Residues, tail[lenB[cur]:]...)
			}
			c.Reads = append(c.Reads, cur)
		}
		contigs = append(contigs, c)
	}
	sort.SliceStable(contigs, func(i, j int) bool { return len(contigs[i].Residues) > len(contigs[j].Residues) })
	return contigs, nil
}

// N50 returns the standard assembly contiguity metric: the length L such
// that contigs of length >= L cover at least half the total assembled
// bases.
func N50(contigs []Contig) int {
	var total int
	lengths := make([]int, len(contigs))
	for i, c := range contigs {
		lengths[i] = len(c.Residues)
		total += lengths[i]
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	run := 0
	for _, l := range lengths {
		run += l
		if 2*run >= total {
			return l
		}
	}
	return 0
}
