package parallel

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/sw"
)

func randProtein(rng *rand.Rand, n int) []byte {
	const canon = "ACDEFGHIKLMNPQRSTVWY"
	out := make([]byte, n)
	for i := range out {
		out[i] = canon[rng.Intn(len(canon))]
	}
	return out
}

func TestFineGrainedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := score.DefaultProtein()
	for iter := 0; iter < 40; iter++ {
		q := randProtein(rng, 1+rng.Intn(150))
		d := randProtein(rng, 1+rng.Intn(150))
		want := sw.Score(q, d, s)
		for _, workers := range []int{1, 2, 3, 7} {
			for _, strip := range []int{1, 5, 64} {
				if got := FineGrainedScore(q, d, s, workers, strip); got != want {
					t.Fatalf("iter %d workers=%d strip=%d: %d != %d (m=%d n=%d)",
						iter, workers, strip, got, want, len(q), len(d))
				}
			}
		}
	}
}

func TestFineGrainedDegenerate(t *testing.T) {
	s := score.DefaultProtein()
	if FineGrainedScore(nil, []byte("ACD"), s, 4, 8) != 0 {
		t.Error("empty query")
	}
	if FineGrainedScore([]byte("ACD"), nil, s, 4, 8) != 0 {
		t.Error("empty target")
	}
	// More workers than columns must clamp, not deadlock.
	q := []byte("AC")
	d := []byte("AC")
	if got := FineGrainedScore(q, d, s, 16, 4); got != sw.Score(q, d, s) {
		t.Errorf("tiny matrix: %d", got)
	}
	// Zero/negative knobs fall back to sane defaults.
	if got := FineGrainedScore(q, d, s, 0, 0); got != sw.Score(q, d, s) {
		t.Errorf("defaulted knobs: %d", got)
	}
}

func TestFineGrainedGapAcrossBlocks(t *testing.T) {
	// An alignment whose optimal path carries a long horizontal gap across
	// block boundaries exercises the E handoff.
	s := score.Scheme{Matrix: score.BLOSUM62, Gap: score.AffineGap(2, 1)}
	q := []byte("WWWWWW")
	d := []byte("WWWAAAAAAAAAAAAAAAAAAAAWWW")
	want := sw.Score(q, d, s)
	for _, workers := range []int{2, 4, 8} {
		if got := FineGrainedScore(q, d, s, workers, 2); got != want {
			t.Fatalf("workers=%d: %d != %d", workers, got, want)
		}
	}
}

func TestCoarseGrainedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := dataset.Profile{Name: "t", NumSeqs: 60, MeanLen: 70, SigmaLn: 0.5, MinLen: 10, MaxLen: 200}
	db := dataset.Generate(p, 3)
	q := dataset.Queries(db, 1, 80, 80, 4)[0]
	for _, workers := range []int{1, 3, 8} {
		for _, chunk := range []int{1, 7, 100} {
			got, err := CoarseGrainedSearch(q.Residues, db, score.DefaultProtein(), workers, chunk)
			if err != nil {
				t.Fatal(err)
			}
			for i, d := range db {
				if want := sw.Score(q.Residues, d.Residues, score.DefaultProtein()); got[i] != want {
					t.Fatalf("workers=%d chunk=%d seq %d: %d != %d", workers, chunk, i, got[i], want)
				}
			}
		}
	}
	_ = rng
}

func TestCoarseGrainedBadQuery(t *testing.T) {
	db := []*seq.Sequence{seq.New("a", "", []byte("ACD"))}
	if _, err := CoarseGrainedSearch([]byte("AC1"), db, score.DefaultProtein(), 2, 4); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestVeryCoarseGrainedMatchesReference(t *testing.T) {
	p := dataset.Profile{Name: "t", NumSeqs: 15, MeanLen: 50, SigmaLn: 0.4, MinLen: 10, MaxLen: 120}
	db := dataset.Generate(p, 5)
	queries := dataset.Queries(db, 5, 30, 90, 6)
	got, err := VeryCoarseGrainedSearch(queries, db, score.DefaultProtein(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(queries) {
		t.Fatalf("%d result rows", len(got))
	}
	for qi, q := range queries {
		for i, d := range db {
			if want := sw.Score(q.Residues, d.Residues, score.DefaultProtein()); got[qi][i] != want {
				t.Fatalf("query %d seq %d: %d != %d", qi, i, got[qi][i], want)
			}
		}
	}
}

func TestVeryCoarseGrainedBadQuery(t *testing.T) {
	db := []*seq.Sequence{seq.New("a", "", []byte("ACD"))}
	bad := []*seq.Sequence{seq.New("q", "", []byte("A?C"))}
	if _, err := VeryCoarseGrainedSearch(bad, db, score.DefaultProtein(), 2); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestAllStrategiesAgree(t *testing.T) {
	// The taxonomy's point: three decompositions, one answer.
	p := dataset.Profile{Name: "t", NumSeqs: 20, MeanLen: 60, SigmaLn: 0.4, MinLen: 20, MaxLen: 120}
	db := dataset.Generate(p, 7)
	q := dataset.Queries(db, 1, 70, 70, 8)[0]
	s := score.DefaultProtein()

	coarse, err := CoarseGrainedSearch(q.Residues, db, s, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	very, err := VeryCoarseGrainedSearch([]*seq.Sequence{q}, db, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range db {
		fine := FineGrainedScore(q.Residues, d.Residues, s, 3, 16)
		if coarse[i] != fine || very[0][i] != fine {
			t.Fatalf("seq %d: fine=%d coarse=%d very=%d", i, fine, coarse[i], very[0][i])
		}
	}
}

func TestCoarseGrainedStatsAggregation(t *testing.T) {
	// The fallback-telemetry regression: every worker owns a private
	// kernel, and before the Stats variants existed their tier counters
	// were silently dropped on worker exit. Every database sequence must
	// be accounted for in exactly one tier, regardless of worker count.
	p := dataset.Profile{Name: "t", NumSeqs: 40, MeanLen: 60, SigmaLn: 0.5, MinLen: 10, MaxLen: 150}
	db := dataset.Generate(p, 11)
	q := dataset.Queries(db, 1, 70, 70, 12)[0]
	for _, workers := range []int{1, 4, 9} {
		_, stats, err := CoarseGrainedSearchStats(q.Residues, db, score.DefaultProtein(), workers, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := stats.Total(), int64(len(db)); got != want {
			t.Fatalf("workers=%d: stats account for %d sequences, want %d (%+v)", workers, got, want, stats)
		}
		if stats.Scored8 == 0 {
			t.Fatalf("workers=%d: expected some 8-bit resolutions, got %+v", workers, stats)
		}
	}
}

func TestVeryCoarseGrainedStatsAggregation(t *testing.T) {
	p := dataset.Profile{Name: "t", NumSeqs: 12, MeanLen: 50, SigmaLn: 0.4, MinLen: 10, MaxLen: 100}
	db := dataset.Generate(p, 13)
	queries := dataset.Queries(db, 4, 30, 80, 14)
	_, stats, err := VeryCoarseGrainedSearchStats(queries, db, score.DefaultProtein(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stats.Total(), int64(len(queries)*len(db)); got != want {
		t.Fatalf("stats account for %d comparisons, want %d (%+v)", got, want, stats)
	}
}
