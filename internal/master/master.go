// Package master implements the wall-clock master process of the task
// execution environment (§IV, Fig. 4): it acquires the query sequences,
// builds one very coarse-grained task per query, registers slaves, assigns
// tasks through the configured allocation policy (with the workload
// adjustment mechanism), merges the results and reports them to the user.
//
// The scheduling brain is the same sched.Coordinator that drives the
// virtual-time experiments; this package only adds the clock, the mutex and
// the protocol plumbing.
package master

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/seq"
	"repro/internal/wire"
)

// Config describes one job.
type Config struct {
	Queries    []*seq.Sequence
	DBResidues int64        // database size, for task cell counts
	Policy     sched.Policy // nil means PSS
	Adjust     bool
	Omega      int
	// Lease enables lease-based failure detection: a slave that stays
	// silent for longer than this is declared dead and its tasks requeue,
	// which rescues jobs from hung slaves (process alive, connection open,
	// no progress) that SlaveGone never notices. Must comfortably exceed
	// the slaves' notification and standby-poll intervals. 0 disables.
	Lease time.Duration
	// Registry, when non-nil, attaches the job's full instrumentation to it:
	// the coordinator's task-lifecycle counters and depth gauges
	// (sched.NewMetrics), the master's protocol counters, and — for
	// connections served through Listen — wire dispatch latency histograms.
	Registry *metrics.Registry
	// Events, when non-nil, receives the structured scheduler event stream
	// (assign/sample/exec/summary JSON lines) in the same shapes the
	// discrete-event runner's platform.WriteTrace emits, so one toolchain
	// reads wall-clock and simulated runs.
	Events *metrics.EventLog
}

// schedConfig derives the coordinator configuration, attaching scheduler
// metrics when a registry is present. sched.NewMetrics is idempotent per
// registry, so calling this more than once (New + LoadCheckpoint restore)
// re-attaches to the same families.
func (cfg Config) schedConfig() sched.Config {
	sc := sched.Config{
		Policy: cfg.Policy,
		Adjust: cfg.Adjust,
		Omega:  cfg.Omega,
	}
	if cfg.Registry != nil {
		sc.Metrics = sched.NewMetrics(cfg.Registry)
	}
	return sc
}

// masterMetrics are the master-process protocol counters.
type masterMetrics struct {
	registrations *metrics.Counter
	deadSlaves    *metrics.Counter
	messages      *metrics.CounterVec
}

func newMasterMetrics(r *metrics.Registry) *masterMetrics {
	return &masterMetrics{
		registrations: r.Counter("master_registrations_total", "Slave registrations accepted."),
		deadSlaves:    r.Counter("master_dead_slaves_total", "Slaves declared dead (connection drop or lease expiry)."),
		messages:      r.CounterVec("master_messages_total", "Protocol messages dispatched, by kind.", "kind"),
	}
}

// QueryResult is the merged outcome for one query.
type QueryResult struct {
	Query    string
	Hits     []wire.Hit // best-first
	Slave    sched.SlaveID
	Elapsed  time.Duration // completion time relative to job start
	Replicas int           // how many extra copies the adjustment mechanism ran
}

// Master serves one job to any number of slaves. The struct follows the
// lockguard grouping convention: fields above mu are set once in New and
// never reassigned (channels synchronize themselves; the instrumentation
// hooks are nil unless Config.Registry/Events were set); the group below
// mu is what mu guards.
type Master struct {
	queries []*seq.Sequence
	start   time.Time
	lease   time.Duration
	// done closes when every task has a result.
	done chan struct{}
	// stop ends the lease-expiry ticker when the master is shut down
	// before the job completes (Close); loopDone closes when the ticker
	// goroutine has actually exited, so Close can join it.
	stop     chan struct{}
	stopOnce sync.Once
	loopDone chan struct{}
	// serveErr receives each Listen serve loop's terminal error.
	serveErr chan error
	met      *masterMetrics
	wireMet  *wire.Metrics
	events   *metrics.EventLog

	mu     sync.Mutex
	coord  *sched.Coordinator
	closed bool
	// pendingCancel queues cancellations per slave: the protocol is
	// slave-initiated, so a slave learns that its copy of a task became
	// moot on its next Progress or Complete acknowledgement.
	pendingCancel map[sched.SlaveID][]sched.TaskID
}

// New builds a master for the job.
func New(cfg Config) (*Master, error) {
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("master: no queries")
	}
	if cfg.DBResidues <= 0 {
		return nil, fmt.Errorf("master: DBResidues = %d", cfg.DBResidues)
	}
	tasks := make([]sched.Task, len(cfg.Queries))
	for i, q := range cfg.Queries {
		if q.Len() == 0 {
			return nil, fmt.Errorf("master: query %d (%s) is empty", i, q.ID)
		}
		tasks[i] = sched.Task{
			QueryID: q.ID,
			Cells:   int64(q.Len()) * cfg.DBResidues,
		}
	}
	m := &Master{
		coord:         sched.NewCoordinator(tasks, cfg.schedConfig()),
		queries:       cfg.Queries,
		start:         time.Now(),
		done:          make(chan struct{}),
		stop:          make(chan struct{}),
		loopDone:      make(chan struct{}),
		serveErr:      make(chan error, 1),
		lease:         cfg.Lease,
		pendingCancel: map[sched.SlaveID][]sched.TaskID{},
		events:        cfg.Events,
	}
	if cfg.Registry != nil {
		m.met = newMasterMetrics(cfg.Registry)
		m.wireMet = wire.NewMetrics(cfg.Registry)
	}
	if m.lease > 0 {
		go m.expireLoop()
	}
	return m, nil
}

func (m *Master) now() time.Duration { return time.Since(m.start) }

// expireLoop drives the coordinator's lease-based failure detector on the
// wall clock, checking several times per lease so detection latency stays
// a small multiple of the lease itself.
func (m *Master) expireLoop() {
	defer close(m.loopDone)
	interval := m.lease / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-m.stop:
			return
		case <-t.C:
			m.mu.Lock()
			expired := m.coord.Expire(m.now(), m.lease)
			if m.met != nil {
				m.met.deadSlaves.Add(float64(len(expired)))
			}
			m.mu.Unlock()
		}
	}
}

// Close stops the lease-expiry ticker and waits for it to exit, so callers
// can read coordinator state afterwards without racing the detector. It
// does not close listeners returned by Listen.
func (m *Master) Close() {
	m.stopOnce.Do(func() { close(m.stop) })
	if m.lease > 0 {
		<-m.loopDone
	}
}

// Dispatch implements wire.Handler: the single protocol entry point.
// Malformed messages (unknown slave or task IDs) get an error envelope
// instead of crashing the server: the master faces the network.
func (m *Master) Dispatch(req wire.Envelope) wire.Envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	if m.met != nil {
		m.met.messages.With(wire.KindOf(req).String()).Inc()
	}
	badSlave := func(id sched.SlaveID) bool {
		return id < 0 || int(id) >= m.coord.Slaves()
	}
	badTask := func(id sched.TaskID) bool {
		return id < 0 || int(id) >= m.coord.Pool().Len()
	}
	// deadSlave answers a lease-expired or disconnected slave with an
	// explicit error so a hung-then-recovered slave learns its ID is gone
	// and re-registers for a fresh one instead of polling forever.
	deadSlave := func(id sched.SlaveID) *wire.Envelope {
		if !m.coord.Dead(id) {
			return nil
		}
		return &wire.Envelope{Error: fmt.Sprintf("slave %d expired; re-register", id)}
	}
	switch {
	case req.Register != nil:
		id := m.coord.Register(sched.SlaveInfo{
			Name:          req.Register.Name,
			Kind:          req.Register.Kind,
			DeclaredSpeed: req.Register.DeclaredSpeed,
		}, now)
		if m.met != nil {
			m.met.registrations.Inc()
		}
		return wire.Envelope{RegisterAck: &wire.RegisterAckMsg{Slave: id}}

	case req.Request != nil:
		if badSlave(req.Request.Slave) {
			return wire.Envelope{Error: fmt.Sprintf("unknown slave %d", req.Request.Slave)}
		}
		if e := deadSlave(req.Request.Slave); e != nil {
			return *e
		}
		if m.coord.Done() {
			return wire.Envelope{Assign: &wire.AssignMsg{Done: true}}
		}
		tasks, replica := m.coord.RequestWork(req.Request.Slave, now)
		if len(tasks) == 0 {
			return wire.Envelope{Assign: &wire.AssignMsg{Standby: true, Done: m.coord.Done()}}
		}
		if m.events != nil {
			ids := make([]int, len(tasks))
			for i, t := range tasks {
				ids[i] = int(t.ID)
			}
			_ = m.events.Emit(metrics.Event{
				Kind: metrics.EventAssign, TimeSec: now.Seconds(),
				PE: m.slaveNameLocked(req.Request.Slave), Tasks: ids, Replica: replica,
			})
		}
		specs := make([]wire.TaskSpec, len(tasks))
		for i, t := range tasks {
			specs[i] = wire.TaskSpec{
				ID:       t.ID,
				QueryID:  t.QueryID,
				Residues: m.queries[t.ID].Residues,
				Cells:    t.Cells,
			}
		}
		return wire.Envelope{Assign: &wire.AssignMsg{Tasks: specs, Replica: replica}}

	case req.Progress != nil:
		if badSlave(req.Progress.Slave) {
			return wire.Envelope{Error: fmt.Sprintf("unknown slave %d", req.Progress.Slave)}
		}
		if e := deadSlave(req.Progress.Slave); e != nil {
			return *e
		}
		m.coord.ProgressRate(req.Progress.Slave, req.Progress.Rate, req.Progress.Cells, now)
		if m.events != nil {
			_ = m.events.Emit(metrics.Event{
				Kind: metrics.EventSample, TimeSec: now.Seconds(),
				PE: m.slaveNameLocked(req.Progress.Slave), GCUPS: req.Progress.Rate / 1e9,
			})
		}
		return wire.Envelope{ProgressAck: &wire.ProgressAckMsg{
			Cancel: m.takeCancelsLocked(req.Progress.Slave),
			Done:   m.coord.Done(),
		}}

	case req.Complete != nil:
		if badSlave(req.Complete.Slave) {
			return wire.Envelope{Error: fmt.Sprintf("unknown slave %d", req.Complete.Slave)}
		}
		if badTask(req.Complete.Task) {
			return wire.Envelope{Error: fmt.Sprintf("unknown task %d", req.Complete.Task)}
		}
		if e := deadSlave(req.Complete.Slave); e != nil {
			return *e
		}
		// Capture the executor's start time before CompleteWork clears it,
		// so the exec event carries the full occupancy window.
		var startAt time.Duration
		if m.events != nil {
			if st, ok := m.coord.Pool().Executors(req.Complete.Task)[req.Complete.Slave]; ok {
				startAt = st
			}
		}
		accepted, canceledSlaves := m.coord.CompleteWork(req.Complete.Slave, req.Complete.Task,
			req.Complete.Hits, req.Complete.Cells, req.Complete.Rate, now)
		for _, o := range canceledSlaves {
			m.pendingCancel[o] = append(m.pendingCancel[o], req.Complete.Task)
		}
		if accepted && m.events != nil {
			_ = m.events.Emit(metrics.Event{
				Kind: metrics.EventExec, PE: m.slaveNameLocked(req.Complete.Slave),
				Task: int(req.Complete.Task), TimeSec: startAt.Seconds(),
				EndSec: now.Seconds(), Completed: true,
			})
		}
		if m.coord.Done() && !m.closed {
			m.closed = true
			close(m.done)
			m.emitSummaryLocked(now)
		}
		return wire.Envelope{CompleteAck: &wire.CompleteAckMsg{
			Accepted: accepted,
			Cancel:   m.takeCancelsLocked(req.Complete.Slave),
			Done:     m.coord.Done(),
		}}

	default:
		return wire.Envelope{Error: "unknown message"}
	}
}

// slaveName is the event-stream PE label for a slave. Callers hold m.mu.
func (m *Master) slaveNameLocked(id sched.SlaveID) string {
	if name := m.coord.SlaveInfoOf(id).Name; name != "" {
		return name
	}
	return fmt.Sprintf("slave%d", int(id))
}

// emitSummary closes the event stream with per-slave and overall summary
// lines, mirroring platform.WriteTrace's trailer. Callers hold m.mu.
func (m *Master) emitSummaryLocked(now time.Duration) {
	if m.events == nil {
		return
	}
	won := map[sched.SlaveID]int{}
	var cells int64
	for _, r := range m.coord.Results() {
		won[r.Slave]++
		cells += m.coord.Pool().Task(r.Task).Cells
	}
	for id, n := range won {
		_ = m.events.Emit(metrics.Event{Kind: metrics.EventSummary, PE: m.slaveNameLocked(id), TasksWon: n})
	}
	overall := metrics.Event{Kind: metrics.EventSummary, MakespanSec: now.Seconds(), CellsDone: cells}
	if now > 0 {
		overall.TotalGCUPS = float64(cells) / now.Seconds() / 1e9
	}
	_ = m.events.Emit(overall)
}

// takeCancels pops the queued cancellations for a slave. Callers hold m.mu.
func (m *Master) takeCancelsLocked(id sched.SlaveID) []sched.TaskID {
	out := m.pendingCancel[id]
	delete(m.pendingCancel, id)
	return out
}

// SlaveGone implements wire.Handler: a slave's connection dropped, so its
// tasks return to the pool (the paper's future-work scenario of nodes
// leaving mid-run).
func (m *Master) SlaveGone(id sched.SlaveID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id < 0 || int(id) >= m.coord.Slaves() {
		return
	}
	if m.coord.Dead(id) {
		return
	}
	m.coord.SlaveDied(id)
	if m.met != nil {
		m.met.deadSlaves.Inc()
	}
}

// Done returns a channel closed when every task has a result.
func (m *Master) Done() <-chan struct{} { return m.done }

// Wait blocks until the job completes or the timeout elapses.
func (m *Master) Wait(timeout time.Duration) error {
	select {
	case <-m.done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("master: job not finished after %v", timeout)
	}
}

// Results merges and returns the per-query outcomes, in query order.
func (m *Master) Results() []QueryResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	raw := m.coord.Results()
	out := make([]QueryResult, 0, len(raw))
	replicas := map[sched.TaskID]int{}
	for _, a := range m.coord.AssignmentLog() {
		if a.Replica {
			for _, t := range a.Tasks {
				replicas[t]++
			}
		}
	}
	for _, r := range raw {
		qr := QueryResult{
			Query:    r.QueryID,
			Slave:    r.Slave,
			Elapsed:  r.At,
			Replicas: replicas[r.Task],
		}
		if hits, ok := r.Payload.([]wire.Hit); ok {
			qr.Hits = append(qr.Hits, hits...)
			sort.SliceStable(qr.Hits, func(i, j int) bool {
				if qr.Hits[i].Score != qr.Hits[j].Score {
					return qr.Hits[i].Score > qr.Hits[j].Score
				}
				return qr.Hits[i].Index < qr.Hits[j].Index
			})
		}
		out = append(out, qr)
	}
	return out
}

// Elapsed returns the job's wall-clock duration so far (or final, once
// done).
func (m *Master) Elapsed() time.Duration { return m.now() }

// Coordinator exposes the scheduling state for reports.
func (m *Master) Coordinator() *sched.Coordinator {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.coord
}

// Listen binds addr and serves slave connections in the background. It
// returns the bound listener so callers can learn the address and close
// it. The serve loop's terminal error — an unexpected accept failure, or
// the routine "use of closed network connection" after the caller closes
// the listener — is delivered on ServeErrors instead of being discarded.
func (m *Master) Listen(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// With a registry attached, every served connection's dispatches are
	// timed per message kind (wire_call_seconds).
	h := wire.MeterHandler(wire.Handler(m), m.wireMet)
	go func() {
		err := wire.Serve(l, h)
		select {
		case m.serveErr <- err:
		default: // nobody drained the previous error; keep the oldest
		}
	}()
	return l, nil
}

// ServeErrors exposes the terminal error of each Listen serve loop (one
// send per Listen call). The channel is buffered; if several serve loops
// end before anyone reads, only the first error is retained.
func (m *Master) ServeErrors() <-chan error { return m.serveErr }

// SaveCheckpoint writes the job's durable state (task set + collected
// results) as a gob stream. Restarting with LoadCheckpoint skips every
// finished task; unfinished ones re-run. Hit payloads are gob-registered by
// this package.
func (m *Master) SaveCheckpoint(w io.Writer) error {
	m.mu.Lock()
	snap := m.coord.Snapshot()
	m.mu.Unlock()
	return gob.NewEncoder(w).Encode(snap)
}

// LoadCheckpoint rebuilds a master from a checkpoint. The same queries (in
// the same order) must be supplied — the checkpoint carries only scheduling
// state, not sequence data — and are verified against the snapshot.
func LoadCheckpoint(r io.Reader, cfg Config) (*Master, error) {
	var snap sched.Snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("master: reading checkpoint: %w", err)
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if len(snap.Tasks) != len(cfg.Queries) {
		return nil, fmt.Errorf("master: checkpoint has %d tasks but %d queries were supplied",
			len(snap.Tasks), len(cfg.Queries))
	}
	for i, t := range snap.Tasks {
		if t.QueryID != cfg.Queries[i].ID {
			return nil, fmt.Errorf("master: checkpoint task %d is %q but query %d is %q",
				i, t.QueryID, i, cfg.Queries[i].ID)
		}
	}
	// New may already have started the lease-expiry loop, which reads
	// m.coord under the mutex — swap the restored coordinator in under it.
	m.mu.Lock()
	m.coord = sched.Restore(&snap, cfg.schedConfig())
	if m.coord.Done() && !m.closed {
		m.closed = true
		close(m.done)
	}
	m.mu.Unlock()
	return m, nil
}

func init() {
	// Checkpoint payloads are the per-task hit lists.
	gob.Register([]wire.Hit{})
}
